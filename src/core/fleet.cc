#include "core/fleet.hh"

#include <algorithm>
#include <stdexcept>

namespace hermes::fleet {

namespace {

/** Median of a (copied) sample set; 0 when empty. */
std::uint64_t
median(std::vector<std::uint64_t> values)
{
    if (values.empty())
        return 0;
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid,
                     values.end());
    return values[mid];
}

} // namespace

FleetConfig
uniformFleet(std::uint32_t count,
             const runtime::SystemConfig &system,
             const serving::ServingConfig &serving,
             sched::RouterPolicy policy, Seconds ttft_deadline)
{
    FleetConfig config;
    config.policy = policy;
    config.ttftDeadline = ttft_deadline;
    config.replicas.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        ReplicaConfig replica;
        replica.name = "r" + std::to_string(i);
        replica.system = system;
        replica.serving = serving;
        config.replicas.push_back(std::move(replica));
    }
    return config;
}

FleetSimulator::FleetSimulator(FleetConfig config,
                               model::LlmConfig llm)
    : config_(std::move(config)), llm_(std::move(llm))
{
    if (config_.replicas.empty())
        throw std::invalid_argument("FleetSimulator: no replicas");
    for (std::size_t i = 0; i < config_.replicas.size(); ++i) {
        ReplicaConfig &replica = config_.replicas[i];
        if (replica.name.empty())
            replica.name = "r" + std::to_string(i);
        replicas_.push_back(
            std::make_unique<serving::ServingSimulator>(
                replica.system, llm_, replica.serving));
    }
}

sched::ReplicaModel
FleetSimulator::calibrate(std::size_t index,
                          std::uint64_t typical_prompt,
                          std::uint64_t typical_context)
{
    serving::ServingSimulator &simulator = *replicas_[index];
    const std::uint32_t max_batch = std::max<std::uint32_t>(
        config_.replicas[index].serving.maxBatch, 1);

    sched::ReplicaModel model;
    model.maxBatch = max_batch;
    if (!simulator.servable(1, typical_prompt)) {
        // Dead replica (platform cannot run the model): make it look
        // infinitely slow, so the SLO-aware policy never picks it
        // and backlog-aware policies back off once its never-
        // draining queue estimate piles up.  Round-robin still hits
        // it — by design.
        model.prefillSeconds = 1.0e9;
        model.slotTokensPerSecond = 1.0e-9;
        return model;
    }
    // The router's window model charges one joint prefill per
    // admission group of up to maxBatch requests, so calibrate the
    // prefill at the group's batch size, not at batch 1.
    const Seconds step =
        simulator.tokenSeconds(max_batch, typical_context);
    if (step <= 0.0) {
        // Zero is the unservable sentinel (real steps are strictly
        // positive): the decode-context bucket exceeds the replica
        // even though the prompt probe fit.  Same treatment as a
        // dead replica — infinitely slow, never infinitely fast.
        model.prefillSeconds = 1.0e9;
        model.slotTokensPerSecond = 1.0e-9;
        return model;
    }
    model.prefillSeconds =
        simulator.prefillSeconds(max_batch, typical_prompt);
    model.slotTokensPerSecond = 1.0 / step;
    return model;
}

FleetReport
FleetSimulator::run(std::vector<serving::ServedRequest> workload)
{
    serving::sortByArrival(workload);

    FleetReport report;
    report.policy = sched::routerPolicyName(config_.policy);
    report.ttftDeadline = config_.ttftDeadline;
    for (const ReplicaConfig &replica : config_.replicas)
        report.replicaNames.push_back(replica.name);

    // The router's typical request shape depends only on the
    // workload: compute it once, calibrate every replica against it.
    std::vector<std::uint64_t> prompts;
    std::vector<std::uint64_t> generates;
    prompts.reserve(workload.size());
    generates.reserve(workload.size());
    for (const serving::ServedRequest &request : workload) {
        prompts.push_back(request.promptTokens);
        generates.push_back(request.generateTokens);
    }
    const std::uint64_t typical_prompt =
        std::max<std::uint64_t>(median(std::move(prompts)), 1);
    // Decode runs at a context that grows from the prompt; half the
    // typical generation is the representative midpoint.
    const std::uint64_t typical_context =
        typical_prompt + median(std::move(generates)) / 2;

    const std::size_t replica_count = replicas_.size();
    std::vector<sched::ReplicaModel> models;
    models.reserve(replica_count);
    for (std::size_t i = 0; i < replica_count; ++i)
        models.push_back(
            calibrate(i, typical_prompt, typical_context));
    sched::Router router(config_.policy, std::move(models),
                         config_.ttftDeadline);

    // Route in arrival order; each decision updates the router's
    // backlog estimate, so later requests see earlier placements.
    std::vector<std::vector<serving::ServedRequest>> assigned(
        replica_count);
    struct Placement
    {
        int replica = -1;
        std::size_t slot = 0; ///< Position in the replica sub-trace.
    };
    std::vector<Placement> placements(workload.size());
    report.assignment.resize(workload.size(), -1);
    for (std::size_t i = 0; i < workload.size(); ++i) {
        const serving::ServedRequest &request = workload[i];
        const sched::RouteDecision decision = router.route(
            request.arrival, request.generateTokens);
        report.assignment[i] = decision.replica;
        if (decision.replica < 0) {
            ++report.shed;
            continue;
        }
        auto &sub = assigned[static_cast<std::size_t>(
            decision.replica)];
        placements[i] = Placement{decision.replica, sub.size()};
        sub.push_back(request);
    }

    // Ground truth: every replica serves its sub-trace with the full
    // continuous-batching simulation.
    for (std::size_t r = 0; r < replica_count; ++r) {
        report.replicaReports.push_back(
            replicas_[r]->run(assigned[r]));
        const serving::ServingReport &replica =
            report.replicaReports.back();
        report.completed += replica.completed;
        report.rejected += replica.rejected;
        report.makespan = std::max(report.makespan,
                                   replica.makespan);
        report.throughputTps += replica.throughputTps;
        report.costModelSaturated |= replica.costModelSaturated;
    }
    report.rejected += report.shed;

    // Merge per-request metrics back into arrival order.  A replica
    // receives its sub-trace already sorted, so its report rows line
    // up with the slots recorded at routing time.
    report.requests.resize(workload.size());
    std::vector<Seconds> ttft_samples;
    std::uint64_t within_deadline = 0;
    for (std::size_t i = 0; i < workload.size(); ++i) {
        if (placements[i].replica < 0) {
            serving::RequestMetrics &metrics = report.requests[i];
            metrics.id = workload[i].id;
            metrics.arrival = workload[i].arrival;
            metrics.rejected = true;
            continue;
        }
        const auto &replica = report.replicaReports[
            static_cast<std::size_t>(placements[i].replica)];
        report.requests[i] = replica.requests[placements[i].slot];
        const serving::RequestMetrics &metrics = report.requests[i];
        if (!metrics.rejected) {
            ttft_samples.push_back(metrics.ttft());
            within_deadline +=
                metrics.ttft() <= config_.ttftDeadline ? 1 : 0;
        }
    }
    report.p50Ttft = serving::percentile(ttft_samples, 50.0);
    report.p99Ttft = serving::percentile(ttft_samples, 99.0);
    report.sloAttainment =
        workload.empty()
            ? 1.0
            : static_cast<double>(within_deadline) /
                  static_cast<double>(workload.size());
    return report;
}

} // namespace hermes::fleet
