/**
 * @file
 * Discrete-event co-simulation kernel: one virtual clock shared by
 * every replica of a fleet.
 *
 * PR 2's fleet layer was open-loop: the router committed every
 * placement up front from a backlog *estimate*, then each replica
 * replayed its sub-trace in isolation.  The event kernel inverts
 * that control flow.  All replicas advance on a single virtual
 * clock; the fleet pops the earliest event, lets exactly one actor
 * react (deliver an arrival, finish a prefill or decode step, wake
 * an idle replica), and pushes the follow-up events that reaction
 * produces.  Routing therefore happens *at arrival instants*
 * against observed replica state — the prerequisite for
 * feedback-driven policies (true join-shortest-queue, least actual
 * backlog) and for cross-replica dynamics like work stealing.
 *
 * Determinism is load-bearing: fleet reports are pinned
 * byte-identical by tests.  Events are totally ordered by
 * (time, replica, kind, id, insertion sequence), with fleet-level
 * events (arrivals, replica < 0) sorting before any replica event
 * at the same instant — so a boundary at time t always observes
 * every arrival with arrival <= t, exactly like the monolithic
 * serving loop it replaces.
 *
 * Since the million-request rework the queue is *sharded*: one
 * small binary heap per replica plus a lazy min-merge over the
 * replica heads, so a pop costs O(log(events-in-flight-per-replica)
 * + log(replicas)) instead of O(log(total-events)) on one huge
 * heap.  Only fleet-level events (replica < 0: arrivals, ticks,
 * resume-readies) need global ordering; the arrival trace — known
 * and sorted up front — bypasses heaps entirely through a presorted
 * stream consumed by a cursor.  The pop order is *identical* to the
 * single-heap order: the comparator defines a strict total order
 * (the insertion sequence is unique), so any correct merge yields
 * the same sequence, which a golden test pins byte for byte.
 */

#ifndef HERMES_CORE_EVENT_SIM_HH
#define HERMES_CORE_EVENT_SIM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace hermes::sim {

/** What happened at an event's instant. */
enum class EventKind : std::uint8_t
{
    /** A request reaches the fleet; the router decides now. */
    Arrival = 0,

    /** A retired request, recorded on the shared clock. */
    RequestDone = 1,

    /** A replica's joint admission prefill finished. */
    PrefillComplete = 2,

    /** A replica's decode step finished. */
    StepComplete = 3,

    /** An idle replica re-examines its queue (new work arrived). */
    Wake = 4,

    /** Periodic control-plane heartbeat (ControlPolicy::onTick). */
    Tick = 5,

    /**
     * A migrated request's KV transfer landed: the destination
     * replica sees the arrival only now (fleet-level event, like an
     * arrival — transfer latency is modeled by scheduling this at
     * preemption time + the DIMM-link KV-transfer time).
     */
    ResumeReady = 6,

    /**
     * A session's follow-up turn arrives: scheduled at the previous
     * turn's completion + think time (fleet-level event; its id is
     * the follow-up's workload index).  Only session runs emit it —
     * arrival times that depend on completion times are exactly
     * what the open-loop two-phase path cannot express.
     */
    SessionContinue = 7,

    /**
     * A spawned replica finished one lifecycle phase: provisioning
     * (it begins its batch-ramp warm-up) or warming (it goes Active
     * and becomes routable).  Scheduled by the autoscaling verbs at
     * spawn time + the modeled provisioning latency, then again at
     * + the warm-up replay time (see core/fleet.cc).
     */
    ReplicaReady = 8,
};

/** Display name of an event kind. */
std::string eventKindName(EventKind kind);

/** One scheduled event. */
struct Event
{
    Seconds time = 0.0;
    EventKind kind = EventKind::Arrival;

    /** Owning replica; < 0 for fleet-level events (arrivals). */
    std::int32_t replica = -1;

    /** Request id / workload index (kind-dependent), tie-break key. */
    std::uint64_t id = 0;

    /** Insertion sequence, the final FIFO tie-break. */
    std::uint64_t seq = 0;
};

/** Counters over everything a queue has popped. */
struct EventStats
{
    std::uint64_t arrivals = 0;
    std::uint64_t requestsDone = 0;
    std::uint64_t prefills = 0;
    std::uint64_t decodeSteps = 0;
    std::uint64_t wakes = 0;
    std::uint64_t ticks = 0;
    std::uint64_t resumes = 0;
    std::uint64_t sessionContinues = 0;
    std::uint64_t replicaReadies = 0;

    /**
     * Total popped events, kept as its own counter bumped once per
     * pop() — the per-kind fields above always sum to it (pinned by
     * test), but the hot loop reads one field instead of re-adding
     * them.
     */
    std::uint64_t poppedEvents = 0;

    std::uint64_t popped() const { return poppedEvents; }
};

/**
 * Deterministic min-queue over events with a monotonic virtual
 * clock.  pop() returns the globally earliest event under the total
 * order documented in the file header and advances now(); pushing
 * an event earlier than now() is a kernel bug and panics.
 *
 * Internally sharded (see file header): call shard() + reserve()
 * before a large run so every heap is preallocated, and preload the
 * sorted arrival trace with reserveSorted() + pushSorted().  All of
 * that is optional — push()/pop() alone behave exactly like the
 * historical single heap.
 */
class EventQueue
{
  public:
    /** Schedule an event; `seq` is assigned internally. */
    void push(Seconds time, EventKind kind, std::int32_t replica,
              std::uint64_t id);

    /**
     * Append a *fleet-level* event (replica -1) to the presorted
     * stream: O(1), no heap.  Events must be appended in
     * nondecreasing (time, kind, id) order — the kernel bulk-loads
     * the arrival trace this way (the workload is sorted and event
     * ids are ascending workload indices).  Appending out of order
     * panics.  pop() merges the stream against the heaps under the
     * full comparator, so the result is order-identical to having
     * push()ed every event.
     */
    void pushSorted(Seconds time, EventKind kind, std::uint64_t id);

    /**
     * Pre-create `replicas` subqueues so replica events shard
     * without on-demand growth.  Pushing to a replica index beyond
     * the shard count still works (the shard set grows).
     */
    void shard(std::uint32_t replicas);

    /**
     * Pre-reserve heap capacity for about `events` scheduled events
     * so heap growth never reallocates mid-run.  Call after shard():
     * the budget is spread over the replica subqueues (each holds
     * only its replica's in-flight events, so the per-shard slice is
     * capped), the head-merge heap, and the fleet-level heap.
     */
    void reserve(std::size_t events);

    /** Pre-reserve the presorted stream for `events` pushSorted(). */
    void reserveSorted(std::size_t events);

    /** Pop the earliest event (queue must not be empty). */
    Event pop();

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Virtual clock: the time of the last popped event. */
    Seconds now() const { return now_; }

    /** Counters over popped events, by kind. */
    const EventStats &stats() const { return stats_; }

  private:
    /** Min-heap over events (std::push_heap with "later than"). */
    struct Heap
    {
        std::vector<Event> events;

        bool empty() const { return events.empty(); }
        const Event &top() const { return events.front(); }
        void reserve(std::size_t n) { events.reserve(n); }
        void push(const Event &event);
        void pop();
    };

    /** Subqueue for `replica`, growing the shard set on demand. */
    Heap &replicaQueue(std::int32_t replica);

    /** Drop head-merge entries whose event is no longer its
     * subqueue's head (or was popped); `seq` is unique, so an exact
     * match identifies the head event. */
    void dropStaleHeads();

    /**
     * Fleet-level events: the presorted stream (consumed by cursor)
     * plus a heap for events scheduled during the run (ticks,
     * resume-readies).
     */
    std::vector<Event> sorted_;
    std::size_t sortedNext_ = 0;
    Heap fleet_;

    /** Per-replica subqueues and the lazy min-merge over their
     * heads: heads_ holds candidate head events (possibly stale —
     * validated against the subqueue top at pop time). */
    std::vector<Heap> replica_;
    Heap heads_;

    std::size_t size_ = 0;
    Seconds now_ = 0.0;
    std::uint64_t seq_ = 0;
    EventStats stats_;
};

} // namespace hermes::sim

#endif // HERMES_CORE_EVENT_SIM_HH
