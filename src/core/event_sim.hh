/**
 * @file
 * Discrete-event co-simulation kernel: one virtual clock shared by
 * every replica of a fleet.
 *
 * PR 2's fleet layer was open-loop: the router committed every
 * placement up front from a backlog *estimate*, then each replica
 * replayed its sub-trace in isolation.  The event kernel inverts
 * that control flow.  All replicas advance on a single virtual
 * clock; the fleet pops the earliest event, lets exactly one actor
 * react (deliver an arrival, finish a prefill or decode step, wake
 * an idle replica), and pushes the follow-up events that reaction
 * produces.  Routing therefore happens *at arrival instants*
 * against observed replica state — the prerequisite for
 * feedback-driven policies (true join-shortest-queue, least actual
 * backlog) and for cross-replica dynamics like work stealing.
 *
 * Determinism is load-bearing: fleet reports are pinned
 * byte-identical by tests.  Events are totally ordered by
 * (time, replica, kind, id, insertion sequence), with fleet-level
 * events (arrivals, replica < 0) sorting before any replica event
 * at the same instant — so a boundary at time t always observes
 * every arrival with arrival <= t, exactly like the monolithic
 * serving loop it replaces.
 */

#ifndef HERMES_CORE_EVENT_SIM_HH
#define HERMES_CORE_EVENT_SIM_HH

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "common/units.hh"

namespace hermes::sim {

/** What happened at an event's instant. */
enum class EventKind : std::uint8_t
{
    /** A request reaches the fleet; the router decides now. */
    Arrival = 0,

    /** A retired request, recorded on the shared clock. */
    RequestDone = 1,

    /** A replica's joint admission prefill finished. */
    PrefillComplete = 2,

    /** A replica's decode step finished. */
    StepComplete = 3,

    /** An idle replica re-examines its queue (new work arrived). */
    Wake = 4,

    /** Periodic control-plane heartbeat (ControlPolicy::onTick). */
    Tick = 5,

    /**
     * A migrated request's KV transfer landed: the destination
     * replica sees the arrival only now (fleet-level event, like an
     * arrival — transfer latency is modeled by scheduling this at
     * preemption time + the DIMM-link KV-transfer time).
     */
    ResumeReady = 6,
};

/** Display name of an event kind. */
std::string eventKindName(EventKind kind);

/** One scheduled event. */
struct Event
{
    Seconds time = 0.0;
    EventKind kind = EventKind::Arrival;

    /** Owning replica; < 0 for fleet-level events (arrivals). */
    std::int32_t replica = -1;

    /** Request id / workload index (kind-dependent), tie-break key. */
    std::uint64_t id = 0;

    /** Insertion sequence, the final FIFO tie-break. */
    std::uint64_t seq = 0;
};

/** Counters over everything a queue has popped. */
struct EventStats
{
    std::uint64_t arrivals = 0;
    std::uint64_t requestsDone = 0;
    std::uint64_t prefills = 0;
    std::uint64_t decodeSteps = 0;
    std::uint64_t wakes = 0;
    std::uint64_t ticks = 0;
    std::uint64_t resumes = 0;

    std::uint64_t
    popped() const
    {
        return arrivals + requestsDone + prefills + decodeSteps +
               wakes + ticks + resumes;
    }
};

/**
 * Deterministic min-queue over events with a monotonic virtual
 * clock.  pop() returns the globally earliest event under the total
 * order documented in the file header and advances now(); pushing
 * an event earlier than now() is a kernel bug and panics.
 */
class EventQueue
{
  public:
    /** Schedule an event; `seq` is assigned internally. */
    void push(Seconds time, EventKind kind, std::int32_t replica,
              std::uint64_t id);

    /** Pop the earliest event (queue must not be empty). */
    Event pop();

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Virtual clock: the time of the last popped event. */
    Seconds now() const { return now_; }

    /** Counters over popped events, by kind. */
    const EventStats &stats() const { return stats_; }

  private:
    /** std::priority_queue is a max-heap: order by "later than". */
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const;
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Seconds now_ = 0.0;
    std::uint64_t seq_ = 0;
    EventStats stats_;
};

} // namespace hermes::sim

#endif // HERMES_CORE_EVENT_SIM_HH
