/**
 * @file
 * Multi-request serving layer on top of the decode pipeline.
 *
 * The engines simulate one inference request end to end; production
 * traffic is many concurrent requests.  The ServingSimulator drives a
 * whole arrival trace through one engine with iteration-level
 * continuous batching (Orca/vLLM-style):
 *
 *  - admission: arrivals queue; a request is rejected when the queue
 *    is full at its arrival instant;
 *  - between decode steps, waiting requests join the running batch
 *    while slots are free; the joint prefill of the newly admitted
 *    group runs before decoding resumes;
 *  - each decode step advances every running request by one token;
 *    the step latency comes from the engine's own pipeline simulation
 *    (calibrated per batch-size and context-length bucket and
 *    cached), so serving numbers inherit the full overlap model.
 *
 * Since the event-kernel refactor the simulator is *stepwise*: one
 * replica is a resumable engine (beginSession / deliver /
 * startNextWork / completeWork / finishSession) that an external
 * virtual clock — the fleet's event kernel (core/event_sim.hh) —
 * can interleave with other replicas.  The classic closed `run()`
 * loop is reimplemented on top of the stepwise core and reproduces
 * the pre-refactor physics bit for bit, so single-replica callers
 * and the golden tests are untouched.
 *
 * The report carries per-request metrics (queue delay, TTFT,
 * end-to-end latency) and fleet-level percentiles (p50/p90/p99 token
 * latency and TTFT), the numbers a capacity planner actually needs.
 *
 * Requests move through an explicit lifecycle state machine:
 *
 *     Queued ──► Prefilling ──► Running ──► Done
 *        │                        │
 *        └──────► Shed            └──► Preempted ──► Queued  (resume)
 *
 * A running request can be *preempted* at a decode boundary:
 * preempt(id) removes it from the batch and returns a
 * ResumableRequest carrying everything needed to continue elsewhere
 * — the original request, the tokens generated so far, and its
 * accumulated KV context length.  deliverResumed() re-enters such a
 * request: the joint admission prefill charges only the context
 * suffix the new host has no KV for (zero when the KV was retained
 * locally or transferred ahead of the delivery; the fleet layer
 * prices that transfer over the DIMM-link model).  Admission is
 * priority-aware — higher ServedRequest::priority requests leave the
 * queue first, FIFO among equals, so all-default-priority traffic is
 * bit-identical to the historical FIFO order.
 */

#ifndef HERMES_CORE_SERVING_HH
#define HERMES_CORE_SERVING_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hh"
#include "model/llm_config.hh"
#include "runtime/factory.hh"
#include "runtime/system_config.hh"

namespace hermes::serving {

/** One request of an arrival trace. */
struct ServedRequest
{
    std::uint64_t id = 0;
    Seconds arrival = 0.0;
    std::uint32_t promptTokens = 128;
    std::uint32_t generateTokens = 128;

    /**
     * Scheduling priority: higher values leave the admission queue
     * first (FIFO among equals) and are what the priority-preempt
     * control policy protects.  0 — the default — reproduces the
     * historical pure-FIFO admission bit for bit.
     */
    std::uint32_t priority = 0;

    /**
     * Multi-turn conversation this request is one turn of; 0 — the
     * default — marks an independent request and skips all session
     * KV accounting.  Follow-up turns whose session KV is resident
     * on the replica prefill only the un-cached suffix of their
     * prompt (the conversation history is the cached prefix).
     */
    std::uint64_t sessionId = 0;
};

/** Where a request currently is in its lifecycle (see file header). */
enum class RequestState
{
    /** Not (or no longer) tracked by the probed replica. */
    Unknown,

    /** Delivered, waiting for an admission slot. */
    Queued,

    /** In the in-flight joint admission prefill group. */
    Prefilling,

    /** In the running batch, generating tokens. */
    Running,

    /** Preempted at a decode boundary; resumable elsewhere/later. */
    Preempted,

    /** All tokens generated. */
    Done,

    /** Rejected at admission (or shed at the fleet router). */
    Shed,
};

/** Display name of a lifecycle state ("queued", "running", ...). */
std::string requestStateName(RequestState state);

/**
 * A preempted request, ready to resume: the original request plus
 * the progress and KV context it accumulated before preemption.
 * Produced by ServingSimulator::preempt() / takeQueued() and
 * consumed by deliverResumed() — on the same replica (KV retained,
 * free re-prefill) or on another one (the fleet layer charges a
 * DIMM-link KV transfer proportional to contextLength() first).
 */
struct ResumableRequest
{
    ServedRequest request;

    /** Decode tokens already emitted (0: never started running). */
    std::uint32_t tokensGenerated = 0;

    /** Original lifecycle timestamps, preserved across resumes. */
    Seconds admitted = 0.0;
    Seconds firstToken = 0.0;

    /** Lifetime preemption / migration counts, this one included. */
    std::uint32_t preemptions = 0;
    std::uint32_t migrations = 0;

    /** KV-cache length accumulated so far (prompt + generated). */
    std::uint64_t
    contextLength() const
    {
        return static_cast<std::uint64_t>(request.promptTokens) +
               tokensGenerated;
    }
};

/**
 * One queued or running request as the control plane sees it: the
 * inputs a lifecycle policy (priority preemption, drain migration)
 * ranks by.
 */
struct RequestInfo
{
    std::uint64_t id = 0;
    std::uint32_t priority = 0;

    /** Original arrival; age at a boundary is `now - arrival`. */
    Seconds arrival = 0.0;

    std::uint32_t tokensGenerated = 0;
    std::uint32_t remainingTokens = 0;
};

/**
 * Stable-sort a trace into arrival order — the one ordering the
 * workload generator, the router, and the serving loop agree on.
 * (The fleet layer joins replica report rows back to the trace by
 * request id, so ids must be unique within a fleet run; see
 * core/fleet.hh.)
 */
void sortByArrival(std::vector<ServedRequest> &workload);

/**
 * How the calibrated step-cost surface is filled.
 *
 * Exact runs one engine simulation per (batch, context) bucket — the
 * historical behavior, bit-identical costs, required by the golden
 * and kernel-equivalence tests.  Interp runs the engine only at a
 * log-spaced set of anchor context buckets per batch bucket and
 * serves intermediate buckets by piecewise-linear interpolation of
 * the anchor costs (anchors themselves stay exact; saturated,
 * unservable, or regime-straddling anchors — a cost drop or an
 * outsized jump betrays a provisioning step between them — are
 * never interpolated across: such buckets fall back to an exact
 * simulation).  The anchor spacing grows by
 * ~1.125x, which pins the worst-case relative error under 2% for
 * the cost curves every engine produces; growing-context
 * workloads (multi-turn conversations) pay O(log context) engine
 * simulations instead of O(context / seqBucket).
 */
enum class CostModel
{
    Exact,
    Interp,
};

/** Display name of a cost model ("exact" / "interp"). */
std::string costModelName(CostModel model);

/** Parse a display name back to a model; throws on unknown names. */
CostModel costModelByName(const std::string &name);

/**
 * One (batch, context) operating point of the cost surface, used to
 * pre-warm caches before an event loop (see warmCosts()).
 */
struct CostProbe
{
    std::uint32_t batch = 1;
    std::uint64_t seq = 1;
};

/** Serving policy knobs. */
struct ServingConfig
{
    runtime::EngineKind engine = runtime::EngineKind::Hermes;

    /** Continuous-batching slot count (concurrent decodes). */
    std::uint32_t maxBatch = 16;

    /** Admission control: reject arrivals beyond this queue depth. */
    std::uint32_t maxQueue = 256;

    /** Generated tokens per calibration run of the cost model. */
    std::uint32_t calibrationTokens = 8;

    /** Context-length bucket width of the cost cache. */
    std::uint32_t seqBucket = 512;

    /** Workload seed forwarded to the engine's activation trace. */
    std::uint64_t seed = 1;

    /**
     * Session KV memory budget in tokens; 0 — the default — is
     * unlimited (bit-identical to the pre-session behavior).  When
     * retiring a session turn would push the resident total past
     * this, the least-recently-used sessions' KV is evicted and
     * their next turn re-prefills its full context.
     */
    std::uint64_t kvCapacityTokens = 0;

    /**
     * Cost-surface fill strategy (see CostModel).  Exact — the
     * default — keeps goldens and equivalence pins bit-identical;
     * scale benches opt into Interp.
     */
    CostModel costModel = CostModel::Exact;

    bool operator==(const ServingConfig &) const = default;
};

/** Lifecycle timestamps and counters of one served request. */
struct RequestMetrics
{
    std::uint64_t id = 0;
    bool rejected = false;
    Seconds arrival = 0.0;
    Seconds admitted = 0.0;   ///< Joined the running batch (first time).
    Seconds firstToken = 0.0; ///< Prefill complete (first time).
    Seconds completed = 0.0;
    std::uint32_t tokens = 0;
    std::uint32_t priority = 0;

    /** Lifecycle counters, carried across resumes/migrations. */
    std::uint32_t preemptions = 0;
    std::uint32_t migrations = 0;

    Seconds queueDelay() const { return admitted - arrival; }
    Seconds ttft() const { return firstToken - arrival; }
    Seconds latency() const { return completed - arrival; }

    /** Mean decode-step latency after the first token. */
    Seconds
    meanTokenLatency() const
    {
        return tokens > 1
                   ? (completed - firstToken) / (tokens - 1)
                   : 0.0;
    }
};

/** Fleet-level outcome of one serving run. */
struct ServingReport
{
    std::string engine;
    std::vector<RequestMetrics> requests;

    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;

    Seconds makespan = 0.0;
    double throughputTps = 0.0;      ///< Generated tokens per second.
    double meanBatchOccupancy = 0.0; ///< Mean running batch size.
    std::uint32_t peakBatch = 0;

    Seconds p50TokenLatency = 0.0;
    Seconds p90TokenLatency = 0.0;
    Seconds p99TokenLatency = 0.0;
    Seconds p50Ttft = 0.0;
    Seconds p99Ttft = 0.0;

    /**
     * True when some (batch, context) bucket exceeded the engine's
     * capacity and its cost was approximated by the largest
     * servable batch bucket — treat latencies as lower bounds.
     */
    bool costModelSaturated = false;
};

/**
 * KV residency of one conversation on a replica: the context tokens
 * kept warm for the session's next turn.  What the affinity router
 * scores sticky routing by.
 */
struct SessionKv
{
    std::uint64_t session = 0;
    std::uint64_t tokens = 0;
};

/**
 * One-call observed-state snapshot of a replica at a boundary
 * instant: everything the fleet control plane (routing feedback,
 * stealing, future autoscaling) reads about a replica, gathered
 * together so the kernel pays one call per replica instead of a
 * probe per field.
 */
struct ReplicaSnapshot
{
    /** Requests on the replica: running + queued + undecided. */
    std::uint32_t outstanding = 0;

    /** Requests queued but not yet in the running batch. */
    std::uint32_t queued = 0;

    /** Tokens still owed to requests on the replica. */
    double backlogTokens = 0.0;

    /** A prefill or decode step is in flight. */
    bool busy = false;

    /** Capability probe ran and passed. */
    bool knownServable = false;

    /** Capability probe ran and failed (dead replica). */
    bool knownDead = false;

    /** The running batch, batch order (== runningInfos()). */
    std::vector<RequestInfo> runningRequests;

    /** Queued requests, admission order (== queuedInfos()). */
    std::vector<RequestInfo> queuedRequests;

    /** Resident session KV, LRU first (== the eviction order). */
    std::vector<SessionKv> cachedSessions;
};

/** What a replica does next on the shared clock. */
enum class StepKind
{
    /** Nothing queued, nothing running. */
    Idle,

    /** Only future arrivals remain; wake at StepAction::until. */
    WaitArrival,

    /** Joint admission prefill in flight until StepAction::until. */
    Prefill,

    /** One decode step in flight until StepAction::until. */
    Decode,
};

/** Outcome of ServingSimulator::startNextWork(). */
struct StepAction
{
    StepKind kind = StepKind::Idle;

    /** End of the started work, or the next arrival (WaitArrival). */
    Seconds until = 0.0;
};

/**
 * Iteration-level continuous-batching simulator over one engine,
 * exposed as a resumable stepwise replica engine.
 *
 * Decode-step and prefill latencies are calibrated by running the
 * engine (which itself runs on the shared decode pipeline) at the
 * bucketed batch size and context length, then cached, so large
 * traces cost only a handful of engine simulations.  The cost cache
 * persists across sessions and runs.
 *
 * Stepwise session protocol (driven by the fleet event kernel):
 *
 *   beginSession();
 *   deliver(request);                 // at each arrival event
 *   a = startNextWork(now);           // when idle and work exists
 *   ... virtual clock reaches a.until ...
 *   retired = completeWork();         // apply effects, retire
 *   a = startNextWork(a.until);       // chain the next step
 *   ...
 *   report = finishSession();
 *
 * `run()` is exactly this protocol driven by a local loop.
 */
class ServingSimulator
{
  public:
    ServingSimulator(runtime::SystemConfig system,
                     model::LlmConfig llm, ServingConfig config);

    /** Simulate one arrival trace (any order; sorted internally). */
    ServingReport run(std::vector<ServedRequest> workload);

    const ServingConfig &config() const { return config_; }

    // ---- Stepwise session API (event-driven co-simulation) ----

    /** Reset session state (metrics, queues, clock) — not the cache. */
    void beginSession();

    /**
     * Pre-reserve the per-request session tables for about
     * `expected_requests` deliveries so a bulk preload (the fleet
     * kernel knows the trace size up front) never reallocates them
     * mid-run.  Optional; call after beginSession().
     */
    void reserveSession(std::size_t expected_requests);

    /**
     * Adopt `other`'s calibrated step-cost cache (and drop this
     * simulator's own).  Engine physics are pure functions of the
     * (system, model, serving) configuration, so equal-config
     * replicas sharing one cache get bit-identical costs while
     * paying for each cold (batch, context) bucket once per fleet
     * instead of once per replica — the difference between O(fleet)
     * and O(replicas) engine simulations on the kernel hot path.
     * Asserts the configurations are equal.  Not thread-safe
     * against concurrent cost queries; the fleet calibrates one
     * group representative per thread instead.
     */
    void shareCostCacheWith(ServingSimulator &other);

    /**
     * Try to adopt `other`'s exact-simulation anchor store.  An
     * engine simulation of a (batch bucket, context tokens) cell is
     * a pure function of the *physics* configuration — (system,
     * model, engine kind, calibrationTokens, seed) — and not of the
     * serving-policy knobs (maxBatch, maxQueue, seqBucket,
     * kvCapacityTokens, costModel), so replicas that differ only in
     * policy can share every exact anchor they both touch instead
     * of recomputing it per cost-cache group.  Returns true (and
     * shares) when the physics match, false (and changes nothing)
     * when they differ — callers probe candidates in a loop.  The
     * store is mutex-guarded: values are pure, so concurrent fills
     * are bit-identical no matter who wins.  An adopting simulator
     * that finds a cell in the store bills no engine time for it —
     * the simulator that ran it already did.
     */
    bool shareAnchorStoreWith(ServingSimulator &other);

    /** Hand one arrival to the replica (admission decided later). */
    void deliver(const ServedRequest &request);

    /**
     * Re-enter a preempted request at instant `now` (its effective
     * re-arrival for queue ordering; lifecycle timestamps keep the
     * original arrival/admitted/firstToken).  `cached_tokens` is how
     * much of its KV context is already resident on this replica:
     * the full contextLength() when the request resumes where it was
     * preempted or after a KV transfer, 0 for a cold resume — the
     * admission prefill charges only the un-cached suffix.  A
     * never-started request (tokensGenerated == 0) re-enters as a
     * fresh arrival, but keeps its lifecycle counters.
     */
    void deliverResumed(const ResumableRequest &resumed, Seconds now,
                        std::uint64_t cached_tokens);

    /**
     * Preempt running request `id` at a decode boundary: remove it
     * from the batch (it vanishes from this replica's report, like a
     * stolen request) and return the state needed to resume it.  Its
     * KV stays cached here, so a local deliverResumed() with
     * cached_tokens == contextLength() re-prefills nothing.  Throws
     * std::logic_error when the request is queued or unknown here,
     * and must not be called while work is in flight (busy()).
     */
    ResumableRequest preempt(std::uint64_t id);

    /**
     * Remove queued (never running) request `id` for migration to
     * another replica, preserving any resume state it carries.
     * Throws std::logic_error when `id` is not queued here.
     */
    ResumableRequest takeQueued(std::uint64_t id);

    /** Lifecycle state of request `id` on this replica. */
    RequestState stateOf(std::uint64_t id) const;

    /**
     * At a boundary instant `now` (>= clock()), observe due
     * arrivals, make admission decisions, and start the next unit
     * of work: a joint prefill of the newly admitted group, or one
     * decode step of the running batch.  Must not be called while
     * work is in flight (busy()).
     */
    StepAction startNextWork(Seconds now);

    /**
     * Finish the in-flight work at its scheduled end: emit first
     * tokens (prefill) or advance every running request one token
     * (decode), then retire finished requests.  Returns the retired
     * request ids, for the kernel's request-done events — a
     * reference into a buffer reused across steps, valid until the
     * next completeWork() on this simulator.
     */
    const std::vector<std::uint64_t> &completeWork();

    /** Assemble the session's ServingReport (ends the session). */
    ServingReport finishSession();

    /** Whether a prefill or decode step is in flight. */
    bool busy() const { return inflight_ != StepKind::Idle; }

    /** The replica's virtual clock (its last boundary instant). */
    Seconds clock() const { return clock_; }

    // ---- Observed state (feedback routing & work stealing) ----

    /** Requests on this replica: running + queued + undecided. */
    std::uint32_t observedOutstanding() const;

    /** Ground-truth backlog in tokens still owed to requests here. */
    double observedBacklogTokens() const;

    /** Requests queued but not yet in the running batch. */
    std::uint32_t queuedCount() const;

    /** The running batch (includes an in-flight admission group). */
    std::vector<RequestInfo> runningInfos() const;

    /** Queued requests in admission order (waiting, then pending). */
    std::vector<RequestInfo> queuedInfos() const;

    /** All observed-state probes in one call (ReplicaSnapshot). */
    ReplicaSnapshot snapshot() const;

    /**
     * KV context tokens of `session` resident here (0 when absent
     * or evicted).  A follow-up turn routed here prefills only its
     * prompt minus this prefix; the affinity policy scores replicas
     * by exactly this probe (through the snapshot).
     */
    std::uint64_t cachedSessionTokens(std::uint64_t session) const;

    /**
     * Whether this replica is known to serve the session's model
     * (capability probe done and passed).  False until the first
     * request is observed at a boundary.
     */
    bool knownServable() const { return deadChecked_ && !dead_; }

    /** Whether the capability probe ran and failed (dead replica). */
    bool knownDead() const { return deadChecked_ && dead_; }

    /**
     * Remove up to `count` queued (never running) requests, newest
     * arrivals first, and return them in (arrival, id) order for
     * re-delivery to another replica.  Stolen requests vanish from
     * this replica's report.  Resumed entries are skipped — their KV
     * lives here, and a plain steal would silently drop it; use the
     * fleet's migrate verb to move them with their context.
     */
    std::vector<ServedRequest> stealQueued(std::uint32_t count);

    // ---- Calibrated-cost probes ----

    /**
     * Shared with the fleet router so its replica model and the
     * replica's own simulation agree on the physics.  Queries hit
     * the same cache `run()` fills; unservable buckets report 0
     * cost and `servable() == false`.
     */
    Seconds prefillSeconds(std::uint32_t batch,
                           std::uint64_t prompt_tokens);
    Seconds tokenSeconds(std::uint32_t batch, std::uint64_t seq);
    bool servable(std::uint32_t batch, std::uint64_t seq);

    /** Whether any probed bucket fell back to a smaller batch. */
    bool saturated() const { return saturated_; }

    /**
     * Fill the cost cache for the given operating points before an
     * event loop touches them.  In Interp mode the probe set is first
     * reduced to the anchor buckets it needs, so warming a whole
     * context trajectory costs only the log-spaced anchors.  With
     * `threads` > 1 the missing engine simulations run on a local
     * thread pool (each worker owns a private engine); results are
     * inserted sequentially in a fixed order afterwards, and cache
     * fills are order-independent, so warmed and unwarmed runs are
     * bit-identical — warming changes wall-clock time and nothing
     * else.  In particular it never latches saturated(): a warmed
     * bucket's fallback flag is only observed when a run actually
     * touches the bucket, exactly as if it had been a cold miss.
     */
    void warmCosts(const std::vector<CostProbe> &probes,
                   std::uint32_t threads = 1);

    /**
     * Wall-clock seconds this simulator's (shared) cost cache spent
     * inside engine simulations, and how many it ran.  The fleet
     * layer subtracts this from kernel-loop time so events/sec
     * measures the event loop, not the calibration wall.
     */
    double calibrationSeconds() const;
    std::uint64_t calibrationRuns() const;

  private:
    struct StepCosts
    {
        Seconds prefill = 0.0; ///< Whole prompting stage.
        Seconds token = 0.0;   ///< One decode step for the batch.

        /** Bucket fell back to a smaller batch (capacity); every
         * simulator touching it reports saturated(). */
        bool saturatedFallback = false;
    };

    /** One request in the running batch. */
    struct Running
    {
        std::size_t index;       ///< Into requests_ / metrics_.
        std::uint32_t remaining; ///< Decode steps still owed.
        std::uint64_t seq;       ///< Current context length.
    };

    /**
     * Calibrated step costs as a flat table: rows by log2(batch
     * bucket) — a handful, batch buckets are powers of two capped
     * at maxBatch — and columns by context bucket index
     * (seq / seqBucket), dense up to kMaxDenseColumns with a sorted
     * per-row tail for freak contexts so a tiny seqBucket cannot
     * balloon the dense rows.  Replaces the ordered map the hot
     * loop used to walk on every step; shared across equal-config
     * replicas via shareCostCacheWith().
     */
    struct CostCache
    {
        struct Entry
        {
            StepCosts costs;
            bool present = false;
        };

        static constexpr std::uint64_t kMaxDenseColumns = 4096;

        std::vector<std::vector<Entry>> dense;
        std::vector<std::vector<std::pair<std::uint64_t, StepCosts>>>
            overflow; ///< Per row, sorted by context bucket.

        /**
         * Pooled engine: constructed once per cache (== once per
         * shareCostCacheWith group) and reused across misses.
         * Engines are pure functions of their configuration — run()
         * mutates nothing — so reuse is bit-identical to the old
         * engine-per-miss behavior, minus the construction cost.
         */
        std::unique_ptr<runtime::InferenceEngine> engine;

        /** Wall-clock spent in engine simulations, and how many. */
        double engineSeconds = 0.0;
        std::uint64_t engineRuns = 0;
    };

    /**
     * Exact engine simulations shared across simulators whose
     * physics agree (see shareAnchorStoreWith), keyed by the raw
     * operating point (batch bucket, context tokens) — deliberately
     * NOT by (row, column), which bake in this simulator's
     * seqBucket.  An ordered map keeps iteration deterministic; the
     * mutex covers concurrent group-representative calibration
     * threads, and since every value is a pure function of its key,
     * insert races are value-identical.
     */
    struct AnchorStore
    {
        std::mutex mutex;
        std::map<std::pair<std::uint32_t, std::uint64_t>, StepCosts>
            entries;
    };

    /** Calibrated (batch bucket, seq bucket) -> step costs. */
    StepCosts costs(std::uint32_t batch, std::uint64_t seq);

    /**
     * Cached entry at (row, column), or nullptr on a miss.  Grows
     * the cache's row tables as needed; never runs the engine.
     */
    const StepCosts *findCosts(std::size_t row, std::uint64_t column);

    /** Insert `step` at (row, column); dense or sorted overflow. */
    void storeCosts(std::size_t row, std::uint64_t column,
                    const StepCosts &step);

    /**
     * One exact engine simulation of (batch_bucket, seq_bucket),
     * including the batch-halving capacity fallback, on the pooled
     * engine.  Does not touch the cache or saturated_.
     */
    StepCosts exactCosts(std::uint32_t batch_bucket,
                         std::uint64_t seq_bucket);

    /**
     * The Interp miss path for (row, batch_bucket, column): ensure
     * the bracketing anchor columns are cached (exact), validate
     * the chord against an exact simulation at the bracket
     * midpoint, and interpolate — bisecting toward the column when
     * the midpoint disagrees (a curvature knee inside the bracket),
     * or computing exactly when the column is itself an anchor or
     * an anchor is saturated/unservable/regime-straddling.  Does
     * not store the result or touch saturated_.
     */
    StepCosts interpolatedCosts(std::size_t row,
                                std::uint32_t batch_bucket,
                                std::uint64_t column);

    /** Cached-or-computed exact costs at an anchor column. */
    StepCosts anchorCosts(std::size_t row,
                          std::uint32_t batch_bucket,
                          std::uint64_t column);

    /**
     * The raw engine simulation behind exactCosts(), on a
     * caller-supplied engine — what the parallel warming workers run
     * with their thread-private engines.
     */
    static StepCosts simulateCosts(runtime::InferenceEngine &engine,
                                   const model::LlmConfig &llm,
                                   const ServingConfig &config,
                                   std::uint32_t batch_bucket,
                                   std::uint64_t seq_bucket);

    /** Entry `index` packaged for resume (counters as recorded —
     * preempt() adds its own increment). */
    ResumableRequest resumableAt(std::size_t index) const;

    /**
     * Take `session`'s KV out of the residency table (it is pinned
     * by the admitting request until retire).  Returns the cached
     * tokens, capped at `prompt_tokens` — a follow-up turn's prompt
     * always extends the history it grew from, so the cached prefix
     * can never exceed the prompt.
     */
    std::uint64_t consumeSessionKv(std::uint64_t session,
                                   std::uint64_t prompt_tokens);

    /**
     * (Re-)insert `session` at the MRU end with `context_tokens`
     * resident, then evict LRU sessions while over
     * kvCapacityTokens (capacity 0: unlimited).
     */
    void retireSessionKv(std::uint64_t session,
                         std::uint64_t context_tokens);

    runtime::SystemConfig system_;
    model::LlmConfig llm_;
    ServingConfig config_;
    std::shared_ptr<CostCache> cache_;
    std::shared_ptr<AnchorStore> anchors_;
    bool saturated_ = false;

    /** Why an entry left this replica (excluded from its report). */
    enum class Moved : char
    {
        No = 0,
        Stolen,
        Preempted,
    };

    // ---- Session state (reset by beginSession) ----
    std::vector<ServedRequest> requests_; ///< Delivery order.
    std::vector<RequestMetrics> metrics_; ///< Parallel to requests_.
    std::vector<Moved> moved_;            ///< Excluded from report.

    /**
     * Entry arrived via deliverResumed() (it carries resume state
     * and its KV must never be silently dropped).  Parallel to
     * requests_.  This is the discriminator — resumedTokens_ can
     * legitimately be 0 for a resumed entry that never started
     * (takeQueued before its first prefill), so token counts must
     * not double as the fresh/resumed flag.
     */
    std::vector<char> resumed_;

    /** Tokens a resumed entry generated before (re)delivery here.
     * Parallel to requests_. */
    std::vector<std::uint32_t> resumedTokens_;

    /** KV context tokens resident here at delivery (resumed entries
     * only); the admission prefill charges context minus this. */
    std::vector<std::uint64_t> cachedTokens_;

    std::deque<std::size_t> pending_;     ///< Delivered, unobserved.
    std::deque<std::size_t> waiting_;     ///< In the admission queue.
    std::vector<Running> active_;         ///< The running batch.

    /**
     * Tokens still owed to requests on this replica, maintained
     * incrementally at every delivery / admission / token /
     * preempt / steal instead of walking all three queues per
     * observation — observedBacklogTokens() is O(1) on the kernel's
     * per-arrival gather path.  Token counts are integral, so the
     * counter equals the historical summation exactly.
     */
    std::uint64_t backlogOwed_ = 0;

    /**
     * Resident session KV, LRU order (front evicted first, back
     * most recently retired).  Touched only by session turns
     * (sessionId != 0): an entry is *consumed* when a fresh turn of
     * the session is admitted (the KV is then pinned by the running
     * request, invisible to routing) and re-inserted, grown by the
     * turn's tokens, when the turn retires.  kvResidentTokens_
     * tracks the total; retiring past kvCapacityTokens evicts from
     * the front.  Sessions per replica stay small, so linear scans
     * beat a map here.
     */
    std::vector<SessionKv> sessionKv_;
    std::uint64_t kvResidentTokens_ = 0;

    /** Retired-ids buffer reused across completeWork() calls. */
    std::vector<std::uint64_t> retired_;

    /** Some delivery carried a non-default priority: admission
     * scans for the max instead of taking the FIFO head. */
    bool prioritized_ = false;

    Seconds clock_ = 0.0;

    StepKind inflight_ = StepKind::Idle;
    Seconds inflightEnd_ = 0.0;
    Seconds inflightDt_ = 0.0;                 ///< Decode step cost.
    std::vector<std::size_t> inflightGroup_;   ///< Prefill group.

    bool deadChecked_ = false;
    bool dead_ = false; ///< Engine cannot serve the model at all.

    std::uint64_t sessionCompleted_ = 0;
    std::uint64_t sessionRejected_ = 0;
    std::uint64_t generated_ = 0;
    Seconds decodeTime_ = 0.0;
    double occupancyWeighted_ = 0.0;
    std::uint32_t peakBatch_ = 0;
    std::vector<Seconds> tokenSamples_;
    std::vector<Seconds> ttftSamples_;
};

/**
 * Deterministic synthetic trace: exponential inter-arrivals at
 * `arrivals_per_second`, fixed prompt/generate lengths.
 */
std::vector<ServedRequest>
syntheticWorkload(std::uint32_t count, double arrivals_per_second,
                  std::uint32_t prompt_tokens,
                  std::uint32_t generate_tokens, std::uint64_t seed);

/** Linear-interpolated percentile (p in [0, 100]) of a sample set. */
Seconds percentile(std::vector<Seconds> values, double p);

} // namespace hermes::serving

#endif // HERMES_CORE_SERVING_HH
