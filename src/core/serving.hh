/**
 * @file
 * Multi-request serving layer on top of the decode pipeline.
 *
 * The engines simulate one inference request end to end; production
 * traffic is many concurrent requests.  The ServingSimulator drives a
 * whole arrival trace through one engine with iteration-level
 * continuous batching (Orca/vLLM-style):
 *
 *  - admission: arrivals queue; a request is rejected when the queue
 *    is full at its arrival instant;
 *  - between decode steps, waiting requests join the running batch
 *    while slots are free; the joint prefill of the newly admitted
 *    group runs before decoding resumes;
 *  - each decode step advances every running request by one token;
 *    the step latency comes from the engine's own pipeline simulation
 *    (calibrated per batch-size and context-length bucket and
 *    cached), so serving numbers inherit the full overlap model.
 *
 * Since the event-kernel refactor the simulator is *stepwise*: one
 * replica is a resumable engine (beginSession / deliver /
 * startNextWork / completeWork / finishSession) that an external
 * virtual clock — the fleet's event kernel (core/event_sim.hh) —
 * can interleave with other replicas.  The classic closed `run()`
 * loop is reimplemented on top of the stepwise core and reproduces
 * the pre-refactor physics bit for bit, so single-replica callers
 * and the golden tests are untouched.
 *
 * The report carries per-request metrics (queue delay, TTFT,
 * end-to-end latency) and fleet-level percentiles (p50/p90/p99 token
 * latency and TTFT), the numbers a capacity planner actually needs.
 */

#ifndef HERMES_CORE_SERVING_HH
#define HERMES_CORE_SERVING_HH

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/units.hh"
#include "model/llm_config.hh"
#include "runtime/factory.hh"
#include "runtime/system_config.hh"

namespace hermes::serving {

/** One request of an arrival trace. */
struct ServedRequest
{
    std::uint64_t id = 0;
    Seconds arrival = 0.0;
    std::uint32_t promptTokens = 128;
    std::uint32_t generateTokens = 128;
};

/**
 * Stable-sort a trace into arrival order — the one ordering the
 * workload generator, the router, and the serving loop agree on.
 * (The fleet layer joins replica report rows back to the trace by
 * request id, so ids must be unique within a fleet run; see
 * core/fleet.hh.)
 */
void sortByArrival(std::vector<ServedRequest> &workload);

/** Serving policy knobs. */
struct ServingConfig
{
    runtime::EngineKind engine = runtime::EngineKind::Hermes;

    /** Continuous-batching slot count (concurrent decodes). */
    std::uint32_t maxBatch = 16;

    /** Admission control: reject arrivals beyond this queue depth. */
    std::uint32_t maxQueue = 256;

    /** Generated tokens per calibration run of the cost model. */
    std::uint32_t calibrationTokens = 8;

    /** Context-length bucket width of the cost cache. */
    std::uint32_t seqBucket = 512;

    /** Workload seed forwarded to the engine's activation trace. */
    std::uint64_t seed = 1;
};

/** Lifecycle timestamps and counters of one served request. */
struct RequestMetrics
{
    std::uint64_t id = 0;
    bool rejected = false;
    Seconds arrival = 0.0;
    Seconds admitted = 0.0;   ///< Joined the running batch.
    Seconds firstToken = 0.0; ///< Prefill complete.
    Seconds completed = 0.0;
    std::uint32_t tokens = 0;

    Seconds queueDelay() const { return admitted - arrival; }
    Seconds ttft() const { return firstToken - arrival; }
    Seconds latency() const { return completed - arrival; }

    /** Mean decode-step latency after the first token. */
    Seconds
    meanTokenLatency() const
    {
        return tokens > 1
                   ? (completed - firstToken) / (tokens - 1)
                   : 0.0;
    }
};

/** Fleet-level outcome of one serving run. */
struct ServingReport
{
    std::string engine;
    std::vector<RequestMetrics> requests;

    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;

    Seconds makespan = 0.0;
    double throughputTps = 0.0;      ///< Generated tokens per second.
    double meanBatchOccupancy = 0.0; ///< Mean running batch size.
    std::uint32_t peakBatch = 0;

    Seconds p50TokenLatency = 0.0;
    Seconds p90TokenLatency = 0.0;
    Seconds p99TokenLatency = 0.0;
    Seconds p50Ttft = 0.0;
    Seconds p99Ttft = 0.0;

    /**
     * True when some (batch, context) bucket exceeded the engine's
     * capacity and its cost was approximated by the largest
     * servable batch bucket — treat latencies as lower bounds.
     */
    bool costModelSaturated = false;
};

/**
 * One-call observed-state snapshot of a replica at a boundary
 * instant: everything the fleet control plane (routing feedback,
 * stealing, future autoscaling) reads about a replica, gathered
 * together so the kernel pays one call per replica instead of a
 * probe per field.
 */
struct ReplicaSnapshot
{
    /** Requests on the replica: running + queued + undecided. */
    std::uint32_t outstanding = 0;

    /** Requests queued but not yet in the running batch. */
    std::uint32_t queued = 0;

    /** Tokens still owed to requests on the replica. */
    double backlogTokens = 0.0;

    /** A prefill or decode step is in flight. */
    bool busy = false;

    /** Capability probe ran and passed. */
    bool knownServable = false;

    /** Capability probe ran and failed (dead replica). */
    bool knownDead = false;
};

/** What a replica does next on the shared clock. */
enum class StepKind
{
    /** Nothing queued, nothing running. */
    Idle,

    /** Only future arrivals remain; wake at StepAction::until. */
    WaitArrival,

    /** Joint admission prefill in flight until StepAction::until. */
    Prefill,

    /** One decode step in flight until StepAction::until. */
    Decode,
};

/** Outcome of ServingSimulator::startNextWork(). */
struct StepAction
{
    StepKind kind = StepKind::Idle;

    /** End of the started work, or the next arrival (WaitArrival). */
    Seconds until = 0.0;
};

/**
 * Iteration-level continuous-batching simulator over one engine,
 * exposed as a resumable stepwise replica engine.
 *
 * Decode-step and prefill latencies are calibrated by running the
 * engine (which itself runs on the shared decode pipeline) at the
 * bucketed batch size and context length, then cached, so large
 * traces cost only a handful of engine simulations.  The cost cache
 * persists across sessions and runs.
 *
 * Stepwise session protocol (driven by the fleet event kernel):
 *
 *   beginSession();
 *   deliver(request);                 // at each arrival event
 *   a = startNextWork(now);           // when idle and work exists
 *   ... virtual clock reaches a.until ...
 *   retired = completeWork();         // apply effects, retire
 *   a = startNextWork(a.until);       // chain the next step
 *   ...
 *   report = finishSession();
 *
 * `run()` is exactly this protocol driven by a local loop.
 */
class ServingSimulator
{
  public:
    ServingSimulator(runtime::SystemConfig system,
                     model::LlmConfig llm, ServingConfig config);

    /** Simulate one arrival trace (any order; sorted internally). */
    ServingReport run(std::vector<ServedRequest> workload);

    const ServingConfig &config() const { return config_; }

    // ---- Stepwise session API (event-driven co-simulation) ----

    /** Reset session state (metrics, queues, clock) — not the cache. */
    void beginSession();

    /** Hand one arrival to the replica (admission decided later). */
    void deliver(const ServedRequest &request);

    /**
     * At a boundary instant `now` (>= clock()), observe due
     * arrivals, make admission decisions, and start the next unit
     * of work: a joint prefill of the newly admitted group, or one
     * decode step of the running batch.  Must not be called while
     * work is in flight (busy()).
     */
    StepAction startNextWork(Seconds now);

    /**
     * Finish the in-flight work at its scheduled end: emit first
     * tokens (prefill) or advance every running request one token
     * (decode), then retire finished requests.  Returns the retired
     * request ids, for the kernel's request-done events.
     */
    std::vector<std::uint64_t> completeWork();

    /** Assemble the session's ServingReport (ends the session). */
    ServingReport finishSession();

    /** Whether a prefill or decode step is in flight. */
    bool busy() const { return inflight_ != StepKind::Idle; }

    /** The replica's virtual clock (its last boundary instant). */
    Seconds clock() const { return clock_; }

    // ---- Observed state (feedback routing & work stealing) ----

    /** Requests on this replica: running + queued + undecided. */
    std::uint32_t observedOutstanding() const;

    /** Ground-truth backlog in tokens still owed to requests here. */
    double observedBacklogTokens() const;

    /** Requests queued but not yet in the running batch. */
    std::uint32_t queuedCount() const;

    /** All observed-state probes in one call (ReplicaSnapshot). */
    ReplicaSnapshot snapshot() const;

    /**
     * Whether this replica is known to serve the session's model
     * (capability probe done and passed).  False until the first
     * request is observed at a boundary.
     */
    bool knownServable() const { return deadChecked_ && !dead_; }

    /** Whether the capability probe ran and failed (dead replica). */
    bool knownDead() const { return deadChecked_ && dead_; }

    /**
     * Remove up to `count` queued (never running) requests, newest
     * arrivals first, and return them in (arrival, id) order for
     * re-delivery to another replica.  Stolen requests vanish from
     * this replica's report.
     */
    std::vector<ServedRequest> stealQueued(std::uint32_t count);

    // ---- Calibrated-cost probes ----

    /**
     * Shared with the fleet router so its replica model and the
     * replica's own simulation agree on the physics.  Queries hit
     * the same cache `run()` fills; unservable buckets report 0
     * cost and `servable() == false`.
     */
    Seconds prefillSeconds(std::uint32_t batch,
                           std::uint64_t prompt_tokens);
    Seconds tokenSeconds(std::uint32_t batch, std::uint64_t seq);
    bool servable(std::uint32_t batch, std::uint64_t seq);

    /** Whether any probed bucket fell back to a smaller batch. */
    bool saturated() const { return saturated_; }

  private:
    struct StepCosts
    {
        Seconds prefill = 0.0; ///< Whole prompting stage.
        Seconds token = 0.0;   ///< One decode step for the batch.
    };

    /** One request in the running batch. */
    struct Running
    {
        std::size_t index;       ///< Into requests_ / metrics_.
        std::uint32_t remaining; ///< Decode steps still owed.
        std::uint64_t seq;       ///< Current context length.
    };

    /** Calibrated (batch bucket, seq bucket) -> step costs. */
    StepCosts &costs(std::uint32_t batch, std::uint64_t seq);

    runtime::SystemConfig system_;
    model::LlmConfig llm_;
    ServingConfig config_;
    std::map<std::pair<std::uint32_t, std::uint64_t>, StepCosts>
        cache_;
    bool saturated_ = false;

    // ---- Session state (reset by beginSession) ----
    std::vector<ServedRequest> requests_; ///< Delivery order.
    std::vector<RequestMetrics> metrics_; ///< Parallel to requests_.
    std::vector<bool> stolen_;            ///< Excluded from report.
    std::deque<std::size_t> pending_;     ///< Delivered, unobserved.
    std::deque<std::size_t> waiting_;     ///< In the admission queue.
    std::vector<Running> active_;         ///< The running batch.
    Seconds clock_ = 0.0;

    StepKind inflight_ = StepKind::Idle;
    Seconds inflightEnd_ = 0.0;
    Seconds inflightDt_ = 0.0;                 ///< Decode step cost.
    std::vector<std::size_t> inflightGroup_;   ///< Prefill group.

    bool deadChecked_ = false;
    bool dead_ = false; ///< Engine cannot serve the model at all.

    std::uint64_t sessionCompleted_ = 0;
    std::uint64_t sessionRejected_ = 0;
    std::uint64_t generated_ = 0;
    Seconds decodeTime_ = 0.0;
    double occupancyWeighted_ = 0.0;
    std::uint32_t peakBatch_ = 0;
    std::vector<Seconds> tokenSamples_;
    std::vector<Seconds> ttftSamples_;
};

/**
 * Deterministic synthetic trace: exponential inter-arrivals at
 * `arrivals_per_second`, fixed prompt/generate lengths.
 */
std::vector<ServedRequest>
syntheticWorkload(std::uint32_t count, double arrivals_per_second,
                  std::uint32_t prompt_tokens,
                  std::uint32_t generate_tokens, std::uint64_t seed);

/** Linear-interpolated percentile (p in [0, 100]) of a sample set. */
Seconds percentile(std::vector<Seconds> values, double p);

} // namespace hermes::serving

#endif // HERMES_CORE_SERVING_HH
