/**
 * @file
 * Multi-request serving layer on top of the decode pipeline.
 *
 * The engines simulate one inference request end to end; production
 * traffic is many concurrent requests.  The ServingSimulator drives a
 * whole arrival trace through one engine with iteration-level
 * continuous batching (Orca/vLLM-style):
 *
 *  - admission: arrivals queue; a request is rejected when the queue
 *    is full at its arrival instant;
 *  - between decode steps, waiting requests join the running batch
 *    while slots are free; the joint prefill of the newly admitted
 *    group runs before decoding resumes;
 *  - each decode step advances every running request by one token;
 *    the step latency comes from the engine's own pipeline simulation
 *    (calibrated per batch-size and context-length bucket and
 *    cached), so serving numbers inherit the full overlap model.
 *
 * The report carries per-request metrics (queue delay, TTFT,
 * end-to-end latency) and fleet-level percentiles (p50/p90/p99 token
 * latency and TTFT), the numbers a capacity planner actually needs.
 */

#ifndef HERMES_CORE_SERVING_HH
#define HERMES_CORE_SERVING_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hh"
#include "model/llm_config.hh"
#include "runtime/factory.hh"
#include "runtime/system_config.hh"

namespace hermes::serving {

/** One request of an arrival trace. */
struct ServedRequest
{
    std::uint64_t id = 0;
    Seconds arrival = 0.0;
    std::uint32_t promptTokens = 128;
    std::uint32_t generateTokens = 128;
};

/**
 * Stable-sort a trace into arrival order.  The single ordering every
 * layer agrees on: the fleet router records per-replica slot indices
 * at routing time and later reads the replica's report rows by those
 * indices, which is only sound while router, workload parser, and
 * ServingSimulator::run all order requests identically.
 */
void sortByArrival(std::vector<ServedRequest> &workload);

/** Serving policy knobs. */
struct ServingConfig
{
    runtime::EngineKind engine = runtime::EngineKind::Hermes;

    /** Continuous-batching slot count (concurrent decodes). */
    std::uint32_t maxBatch = 16;

    /** Admission control: reject arrivals beyond this queue depth. */
    std::uint32_t maxQueue = 256;

    /** Generated tokens per calibration run of the cost model. */
    std::uint32_t calibrationTokens = 8;

    /** Context-length bucket width of the cost cache. */
    std::uint32_t seqBucket = 512;

    /** Workload seed forwarded to the engine's activation trace. */
    std::uint64_t seed = 1;
};

/** Lifecycle timestamps and counters of one served request. */
struct RequestMetrics
{
    std::uint64_t id = 0;
    bool rejected = false;
    Seconds arrival = 0.0;
    Seconds admitted = 0.0;   ///< Joined the running batch.
    Seconds firstToken = 0.0; ///< Prefill complete.
    Seconds completed = 0.0;
    std::uint32_t tokens = 0;

    Seconds queueDelay() const { return admitted - arrival; }
    Seconds ttft() const { return firstToken - arrival; }
    Seconds latency() const { return completed - arrival; }

    /** Mean decode-step latency after the first token. */
    Seconds
    meanTokenLatency() const
    {
        return tokens > 1
                   ? (completed - firstToken) / (tokens - 1)
                   : 0.0;
    }
};

/** Fleet-level outcome of one serving run. */
struct ServingReport
{
    std::string engine;
    std::vector<RequestMetrics> requests;

    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;

    Seconds makespan = 0.0;
    double throughputTps = 0.0;      ///< Generated tokens per second.
    double meanBatchOccupancy = 0.0; ///< Mean running batch size.
    std::uint32_t peakBatch = 0;

    Seconds p50TokenLatency = 0.0;
    Seconds p90TokenLatency = 0.0;
    Seconds p99TokenLatency = 0.0;
    Seconds p50Ttft = 0.0;
    Seconds p99Ttft = 0.0;

    /**
     * True when some (batch, context) bucket exceeded the engine's
     * capacity and its cost was approximated by the largest
     * servable batch bucket — treat latencies as lower bounds.
     */
    bool costModelSaturated = false;
};

/**
 * Iteration-level continuous-batching simulator over one engine.
 *
 * Decode-step and prefill latencies are calibrated by running the
 * engine (which itself runs on the shared decode pipeline) at the
 * bucketed batch size and context length, then cached, so large
 * traces cost only a handful of engine simulations.
 */
class ServingSimulator
{
  public:
    ServingSimulator(runtime::SystemConfig system,
                     model::LlmConfig llm, ServingConfig config);

    /** Simulate one arrival trace (any order; sorted internally). */
    ServingReport run(std::vector<ServedRequest> workload);

    const ServingConfig &config() const { return config_; }

    /**
     * Calibrated-cost probes, shared with the fleet router so its
     * replica model and the replica's own simulation agree on the
     * physics.  Queries hit the same cache `run()` fills; unservable
     * buckets report 0 cost and `servable() == false`.
     */
    Seconds prefillSeconds(std::uint32_t batch,
                           std::uint64_t prompt_tokens);
    Seconds tokenSeconds(std::uint32_t batch, std::uint64_t seq);
    bool servable(std::uint32_t batch, std::uint64_t seq);

    /** Whether any probed bucket fell back to a smaller batch. */
    bool saturated() const { return saturated_; }

  private:
    struct StepCosts
    {
        Seconds prefill = 0.0; ///< Whole prompting stage.
        Seconds token = 0.0;   ///< One decode step for the batch.
    };

    /** Calibrated (batch bucket, seq bucket) -> step costs. */
    StepCosts &costs(std::uint32_t batch, std::uint64_t seq);

    runtime::SystemConfig system_;
    model::LlmConfig llm_;
    ServingConfig config_;
    std::map<std::pair<std::uint32_t, std::uint64_t>, StepCosts>
        cache_;
    bool saturated_ = false;
};

/**
 * Deterministic synthetic trace: exponential inter-arrivals at
 * `arrivals_per_second`, fixed prompt/generate lengths.
 */
std::vector<ServedRequest>
syntheticWorkload(std::uint32_t count, double arrivals_per_second,
                  std::uint32_t prompt_tokens,
                  std::uint32_t generate_tokens, std::uint64_t seed);

/** Linear-interpolated percentile (p in [0, 100]) of a sample set. */
Seconds percentile(std::vector<Seconds> values, double p);

} // namespace hermes::serving

#endif // HERMES_CORE_SERVING_HH
