#include "core/serving.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/rng.hh"
#include "runtime/engine.hh"

namespace hermes::serving {

namespace {

/** Round up to the next power of two (>= 1). */
std::uint32_t
powerOfTwoAtLeast(std::uint32_t value)
{
    std::uint32_t bucket = 1;
    while (bucket < value)
        bucket <<= 1;
    return bucket;
}

} // namespace

void
sortByArrival(std::vector<ServedRequest> &workload)
{
    std::stable_sort(workload.begin(), workload.end(),
                     [](const ServedRequest &a,
                        const ServedRequest &b) {
                         return a.arrival < b.arrival;
                     });
}

ServingSimulator::ServingSimulator(runtime::SystemConfig system,
                                   model::LlmConfig llm,
                                   ServingConfig config)
    : system_(std::move(system)), llm_(std::move(llm)),
      config_(config)
{
    // Explicit guards: degenerate policy values would otherwise
    // divide by zero or stall the admission loop.
    config_.maxBatch = std::max<std::uint32_t>(config_.maxBatch, 1);
    config_.calibrationTokens =
        std::max<std::uint32_t>(config_.calibrationTokens, 1);
    config_.seqBucket =
        std::max<std::uint32_t>(config_.seqBucket, 1);
}

ServingSimulator::StepCosts &
ServingSimulator::costs(std::uint32_t batch, std::uint64_t seq)
{
    const std::uint32_t batch_bucket = std::min(
        powerOfTwoAtLeast(std::max<std::uint32_t>(batch, 1)),
        powerOfTwoAtLeast(config_.maxBatch));
    const std::uint64_t seq_bucket =
        (seq / config_.seqBucket + 1) * config_.seqBucket;

    const auto key = std::make_pair(batch_bucket, seq_bucket);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    // One engine simulation per bucket: the engine itself runs on the
    // shared decode pipeline, so serving latencies inherit the full
    // overlap model.
    runtime::InferenceRequest request;
    request.llm = llm_;
    request.batch = batch_bucket;
    request.promptTokens = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(seq_bucket, UINT32_MAX));
    request.generateTokens = config_.calibrationTokens;
    request.profileTokens = 24;
    request.seed = config_.seed;

    auto engine = runtime::makeEngine(config_.engine, system_);
    runtime::InferenceResult result = engine->run(request);

    // A bucket can be unservable even when smaller ones are not (KV
    // cache grows with batch and context).  Fall back to the largest
    // supported batch bucket and flag the run as saturated rather
    // than serving the step at a corrupt zero cost.
    while (!result.supported && request.batch > 1) {
        request.batch /= 2;
        result = engine->run(request);
        saturated_ = true;
    }

    StepCosts step;
    if (result.supported) {
        step.prefill = result.prefillTime;
        step.token =
            result.generateTime / config_.calibrationTokens;
    } else {
        step.prefill = -1.0; // Sentinel: engine cannot serve this.
        step.token = -1.0;
    }
    return cache_.emplace(key, step).first->second;
}

Seconds
ServingSimulator::prefillSeconds(std::uint32_t batch,
                                 std::uint64_t prompt_tokens)
{
    return std::max(costs(batch, prompt_tokens).prefill, 0.0);
}

Seconds
ServingSimulator::tokenSeconds(std::uint32_t batch,
                               std::uint64_t seq)
{
    return std::max(costs(batch, seq).token, 0.0);
}

bool
ServingSimulator::servable(std::uint32_t batch, std::uint64_t seq)
{
    return costs(batch, seq).token >= 0.0;
}

ServingReport
ServingSimulator::run(std::vector<ServedRequest> workload)
{
    ServingReport report;
    report.engine = runtime::engineKindName(config_.engine);

    sortByArrival(workload);

    report.requests.resize(workload.size());
    for (std::size_t i = 0; i < workload.size(); ++i) {
        report.requests[i].id = workload[i].id;
        report.requests[i].arrival = workload[i].arrival;
    }

    // Capability probe: an engine that cannot run the model at all
    // (capacity, model family) rejects the whole trace.
    if (!workload.empty() &&
        costs(1, workload.front().promptTokens).token < 0.0) {
        for (auto &metrics : report.requests)
            metrics.rejected = true;
        report.rejected = workload.size();
        return report;
    }

    struct Running
    {
        std::size_t index;        ///< Into workload / report.requests.
        std::uint32_t remaining;  ///< Decode steps still owed.
        std::uint64_t seq;        ///< Current context length.
    };

    std::vector<Running> active;
    std::deque<std::size_t> waiting;
    std::size_t next_arrival = 0;
    Seconds clock = 0.0;
    std::uint64_t generated = 0;
    Seconds decode_time = 0.0;
    double occupancy_weighted = 0.0;

    std::vector<Seconds> token_samples;
    std::vector<Seconds> ttft_samples;

    const std::size_t n = workload.size();
    while (report.completed + report.rejected < n ||
           !active.empty()) {
        // Move due arrivals into the admission queue, rejecting past
        // the queue limit.  Free batch slots count as queue capacity:
        // an arrival that will be admitted this very iteration is not
        // "queued".
        const std::size_t free_slots =
            config_.maxBatch > active.size()
                ? config_.maxBatch - active.size()
                : 0;
        while (next_arrival < n &&
               workload[next_arrival].arrival <= clock) {
            if (waiting.size() >= config_.maxQueue + free_slots) {
                report.requests[next_arrival].rejected = true;
                ++report.rejected;
            } else {
                waiting.push_back(next_arrival);
            }
            ++next_arrival;
        }

        if (active.empty() && waiting.empty()) {
            if (next_arrival >= n)
                break;
            clock = workload[next_arrival].arrival; // Idle skip.
            continue;
        }

        // Continuous batching: fill free slots from the queue, then
        // run the joint prefill of the admitted group.
        std::vector<std::size_t> admitted;
        while (!waiting.empty() &&
               active.size() < config_.maxBatch) {
            const std::size_t index = waiting.front();
            waiting.pop_front();
            report.requests[index].admitted = clock;
            admitted.push_back(index);
            active.push_back(Running{
                index, workload[index].generateTokens,
                workload[index].promptTokens});
        }
        if (!admitted.empty()) {
            std::uint32_t max_prompt = 1;
            for (const std::size_t index : admitted)
                max_prompt = std::max(max_prompt,
                                      workload[index].promptTokens);
            // max(0): a bucket probe can come back unsupported (KV
            // growth at large batch); serve it at zero extra cost
            // rather than walking the clock backwards.
            clock += std::max(
                costs(static_cast<std::uint32_t>(admitted.size()),
                      max_prompt)
                    .prefill,
                0.0);
            for (const std::size_t index : admitted) {
                report.requests[index].firstToken = clock;
                ttft_samples.push_back(
                    report.requests[index].ttft());
            }
            // Prefill produces the first token.  The admitted group
            // occupies the tail of `active` (just pushed).
            for (std::size_t k = active.size() - admitted.size();
                 k < active.size(); ++k) {
                Running &running = active[k];
                if (running.remaining > 0) {
                    report.requests[running.index].tokens = 1;
                    --running.remaining;
                    ++running.seq;
                    ++generated;
                }
            }
        } else {
            // One decode step for the whole running batch.
            const auto batch =
                static_cast<std::uint32_t>(active.size());
            std::uint64_t max_seq = 1;
            for (const Running &running : active)
                max_seq = std::max(max_seq, running.seq);
            const Seconds dt =
                std::max(costs(batch, max_seq).token, 0.0);
            clock += dt;
            decode_time += dt;
            occupancy_weighted += static_cast<double>(batch) * dt;
            for (Running &running : active) {
                ++report.requests[running.index].tokens;
                --running.remaining;
                ++running.seq;
                ++generated;
                token_samples.push_back(dt);
            }
        }
        report.peakBatch = std::max(
            report.peakBatch,
            static_cast<std::uint32_t>(active.size()));

        // Retire finished requests.
        for (auto it = active.begin(); it != active.end();) {
            if (it->remaining == 0) {
                report.requests[it->index].completed = clock;
                ++report.completed;
                it = active.erase(it);
            } else {
                ++it;
            }
        }
    }

    report.makespan = clock;
    report.costModelSaturated = saturated_;
    report.throughputTps =
        clock > 0.0 ? static_cast<double>(generated) / clock : 0.0;
    report.meanBatchOccupancy =
        decode_time > 0.0 ? occupancy_weighted / decode_time : 0.0;
    report.p50TokenLatency = percentile(token_samples, 50.0);
    report.p90TokenLatency = percentile(token_samples, 90.0);
    report.p99TokenLatency = percentile(token_samples, 99.0);
    report.p50Ttft = percentile(ttft_samples, 50.0);
    report.p99Ttft = percentile(ttft_samples, 99.0);
    return report;
}

std::vector<ServedRequest>
syntheticWorkload(std::uint32_t count, double arrivals_per_second,
                  std::uint32_t prompt_tokens,
                  std::uint32_t generate_tokens, std::uint64_t seed)
{
    std::vector<ServedRequest> workload;
    workload.reserve(count);
    Rng rng(seed ^ 0x5e417a77ULL);
    Seconds clock = 0.0;
    for (std::uint32_t i = 0; i < count; ++i) {
        ServedRequest request;
        request.id = i;
        request.arrival = clock;
        request.promptTokens = prompt_tokens;
        request.generateTokens = generate_tokens;
        workload.push_back(request);
        if (arrivals_per_second > 0.0) {
            // Exponential inter-arrival; clamp the tail so one freak
            // gap cannot dominate a short trace.
            const double u =
                std::max(rng.uniform(), 1.0e-12);
            clock += std::min(-std::log(u) / arrivals_per_second,
                              100.0 / arrivals_per_second);
        }
    }
    return workload;
}

Seconds
percentile(std::vector<Seconds> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    const double rank =
        clamped / 100.0 *
        static_cast<double>(values.size() - 1);
    const auto low = static_cast<std::size_t>(rank);
    const std::size_t high =
        std::min(low + 1, values.size() - 1);
    const double fraction = rank - static_cast<double>(low);
    return values[low] +
           (values[high] - values[low]) * fraction;
}

} // namespace hermes::serving
