#include "core/serving.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/threads.hh"
#include "runtime/engine.hh"

namespace hermes::serving {

namespace {

/** Round up to the next power of two (>= 1). */
std::uint32_t
powerOfTwoAtLeast(std::uint32_t value)
{
    std::uint32_t bucket = 1;
    while (bucket < value)
        bucket <<= 1;
    return bucket;
}

/**
 * The Interp anchor schedule over context-bucket columns: every
 * column up to 16, then geometric with ratio ~1.125 (each anchor
 * adds an eighth of itself).  The engines' cost curves are mostly
 * polynomial but carry discrete wrinkles (partitioning thresholds,
 * offload boundaries), so the span is kept tight: chord
 * interpolation across a 1.125x span stays well inside the pinned
 * 2% bound on every engine, while a growing-context trajectory
 * still touches only O(log context) anchors.
 *
 * Returns the bracketing anchors {lo, hi} with lo <= column <= hi;
 * lo == hi exactly when `column` is itself an anchor.
 */
std::pair<std::uint64_t, std::uint64_t>
anchorBracket(std::uint64_t column)
{
    if (column <= 4)
        return {column, column};
    std::uint64_t lo = 4;
    std::uint64_t hi = 4;
    while (hi < column) {
        lo = hi;
        hi += std::max<std::uint64_t>(1, hi / 8);
    }
    return {hi == column ? column : lo, hi};
}

} // namespace

std::string
costModelName(CostModel model)
{
    return model == CostModel::Interp ? "interp" : "exact";
}

CostModel
costModelByName(const std::string &name)
{
    if (name == "exact")
        return CostModel::Exact;
    if (name == "interp")
        return CostModel::Interp;
    throw std::invalid_argument("unknown cost model: " + name +
                                " (exact, interp)");
}

std::string
requestStateName(RequestState state)
{
    switch (state) {
    case RequestState::Unknown:
        return "unknown";
    case RequestState::Queued:
        return "queued";
    case RequestState::Prefilling:
        return "prefilling";
    case RequestState::Running:
        return "running";
    case RequestState::Preempted:
        return "preempted";
    case RequestState::Done:
        return "done";
    case RequestState::Shed:
        return "shed";
    }
    return "?";
}

void
sortByArrival(std::vector<ServedRequest> &workload)
{
    std::stable_sort(workload.begin(), workload.end(),
                     [](const ServedRequest &a,
                        const ServedRequest &b) {
                         return a.arrival < b.arrival;
                     });
}

ServingSimulator::ServingSimulator(runtime::SystemConfig system,
                                   model::LlmConfig llm,
                                   ServingConfig config)
    : system_(std::move(system)), llm_(std::move(llm)),
      config_(config), cache_(std::make_shared<CostCache>()),
      anchors_(std::make_shared<AnchorStore>())
{
    // Explicit guards: degenerate policy values would otherwise
    // divide by zero or stall the admission loop.
    config_.maxBatch = std::max<std::uint32_t>(config_.maxBatch, 1);
    config_.calibrationTokens =
        std::max<std::uint32_t>(config_.calibrationTokens, 1);
    config_.seqBucket =
        std::max<std::uint32_t>(config_.seqBucket, 1);
}

ServingSimulator::StepCosts
ServingSimulator::costs(std::uint32_t batch, std::uint64_t seq)
{
    const std::uint32_t batch_bucket = std::min(
        powerOfTwoAtLeast(std::max<std::uint32_t>(batch, 1)),
        powerOfTwoAtLeast(config_.maxBatch));
    // Row by log2 of the power-of-two batch bucket; column by
    // context bucket index, with the sorted per-row tail catching
    // contexts past the dense cap.
    const auto row =
        static_cast<std::size_t>(std::countr_zero(batch_bucket));
    const std::uint64_t column = seq / config_.seqBucket;

    if (const StepCosts *hit = findCosts(row, column)) {
        saturated_ |= hit->saturatedFallback;
        return *hit;
    }
    const std::uint64_t seq_bucket =
        (column + 1) * config_.seqBucket;
    const StepCosts step =
        config_.costModel == CostModel::Interp
            ? interpolatedCosts(row, batch_bucket, column)
            : exactCosts(batch_bucket, seq_bucket);
    storeCosts(row, column, step);
    saturated_ |= step.saturatedFallback;
    return step;
}

const ServingSimulator::StepCosts *
ServingSimulator::findCosts(std::size_t row, std::uint64_t column)
{
    CostCache &cache = *cache_;
    if (cache.dense.size() <= row) {
        cache.dense.resize(row + 1);
        cache.overflow.resize(row + 1);
    }
    if (column < CostCache::kMaxDenseColumns) {
        auto &cells = cache.dense[row];
        if (cells.size() <= column)
            cells.resize(column + 1);
        return cells[column].present ? &cells[column].costs
                                     : nullptr;
    }
    const auto &tail = cache.overflow[row];
    const auto it = std::lower_bound(
        tail.begin(), tail.end(), column,
        [](const std::pair<std::uint64_t, StepCosts> &entry,
           std::uint64_t key) { return entry.first < key; });
    if (it != tail.end() && it->first == column)
        return &it->second;
    return nullptr;
}

void
ServingSimulator::storeCosts(std::size_t row, std::uint64_t column,
                             const StepCosts &step)
{
    CostCache &cache = *cache_;
    if (column < CostCache::kMaxDenseColumns) {
        cache.dense[row][column] = CostCache::Entry{step, true};
        return;
    }
    auto &tail = cache.overflow[row];
    const auto it = std::lower_bound(
        tail.begin(), tail.end(), column,
        [](const std::pair<std::uint64_t, StepCosts> &entry,
           std::uint64_t key) { return entry.first < key; });
    if (it != tail.end() && it->first == column)
        it->second = step;
    else
        tail.insert(it, {column, step});
}

ServingSimulator::StepCosts
ServingSimulator::simulateCosts(runtime::InferenceEngine &engine,
                                const model::LlmConfig &llm,
                                const ServingConfig &config,
                                std::uint32_t batch_bucket,
                                std::uint64_t seq_bucket)
{
    // One engine simulation per bucket: the engine itself runs on the
    // shared decode pipeline, so serving latencies inherit the full
    // overlap model.
    runtime::InferenceRequest request;
    request.llm = llm;
    request.batch = batch_bucket;
    request.promptTokens = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(seq_bucket, UINT32_MAX));
    request.generateTokens = config.calibrationTokens;
    request.profileTokens = 24;
    request.seed = config.seed;

    runtime::InferenceResult result = engine.run(request);

    // A bucket can be unservable even when smaller ones are not (KV
    // cache grows with batch and context).  Fall back to the largest
    // supported batch bucket and flag the bucket as saturated rather
    // than serving the step at a corrupt zero cost.
    StepCosts step;
    while (!result.supported && request.batch > 1) {
        request.batch /= 2;
        result = engine.run(request);
        step.saturatedFallback = true;
    }

    if (result.supported) {
        step.prefill = result.prefillTime;
        step.token =
            result.generateTime / config.calibrationTokens;
    } else {
        step.prefill = -1.0; // Sentinel: engine cannot serve this.
        step.token = -1.0;
    }
    return step;
}

ServingSimulator::StepCosts
ServingSimulator::exactCosts(std::uint32_t batch_bucket,
                             std::uint64_t seq_bucket)
{
    // A physics-equal simulator (shareAnchorStoreWith) may already
    // have simulated this operating point: adopt its result and
    // bill nothing — the simulator that ran the engine already did.
    const std::pair<std::uint32_t, std::uint64_t> key{batch_bucket,
                                                      seq_bucket};
    {
        std::lock_guard<std::mutex> lock(anchors_->mutex);
        const auto it = anchors_->entries.find(key);
        if (it != anchors_->entries.end())
            return it->second;
    }
    CostCache &cache = *cache_;
    if (!cache.engine)
        cache.engine = runtime::makeEngine(config_.engine, system_);
    const auto start = std::chrono::steady_clock::now();
    const StepCosts step = simulateCosts(
        *cache.engine, llm_, config_, batch_bucket, seq_bucket);
    cache.engineSeconds +=
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    ++cache.engineRuns;
    {
        // First writer wins; a racing writer computed the identical
        // value (pure function of the key), so keeping either is
        // bit-identical.
        std::lock_guard<std::mutex> lock(anchors_->mutex);
        anchors_->entries.emplace(key, step);
    }
    return step;
}

ServingSimulator::StepCosts
ServingSimulator::anchorCosts(std::size_t row,
                              std::uint32_t batch_bucket,
                              std::uint64_t column)
{
    if (const StepCosts *hit = findCosts(row, column))
        return *hit;
    const StepCosts step =
        exactCosts(batch_bucket, (column + 1) * config_.seqBucket);
    storeCosts(row, column, step);
    return step;
}

ServingSimulator::StepCosts
ServingSimulator::interpolatedCosts(std::size_t row,
                                    std::uint32_t batch_bucket,
                                    std::uint64_t column)
{
    auto [lo, hi] = anchorBracket(column);
    const std::uint64_t seq_bucket =
        (column + 1) * config_.seqBucket;
    if (lo == hi) // The column is itself an anchor: stay exact.
        return exactCosts(batch_bucket, seq_bucket);
    while (true) {
        const StepCosts below = anchorCosts(row, batch_bucket, lo);
        const StepCosts above = anchorCosts(row, batch_bucket, hi);
        // Saturated or unservable anchors are never interpolated
        // across: capacity cliffs are discontinuities, and a bucket
        // on the near side of one may still be cleanly servable.
        if (below.token < 0.0 || above.token < 0.0 ||
            below.saturatedFallback || above.saturatedFallback)
            return exactCosts(batch_bucket, seq_bucket);
        // Resource-provisioning steps make the surface piecewise
        // even when servable: a KV-driven extra GPU or DIMM divides
        // every cost by the new device count, so cost can DROP as
        // context grows, and an activated offload can jump it up.
        // Across a 1.125x anchor span, smooth polynomial growth
        // stays well under 1.35x; anchors outside that envelope
        // straddle a regime boundary — compute exactly.
        const auto smooth = [](double lo_cost, double hi_cost) {
            return hi_cost >= lo_cost && hi_cost <= lo_cost * 1.35;
        };
        if (!smooth(below.prefill, above.prefill) ||
            !smooth(below.token, above.token))
            return exactCosts(batch_bucket, seq_bucket);
        if (hi - lo == 1) // No interior column; defensive.
            return exactCosts(batch_bucket, seq_bucket);
        // Validate the chord against an exact simulation at the
        // bracket midpoint before trusting it: a curvature knee
        // between the anchors (a bandwidth ceiling kicking in, say)
        // keeps costs monotone and inside the envelope yet pulls
        // the true curve off the chord.  The midpoint cell is
        // cached, so a bracket pays for its validation once.
        const std::uint64_t mid = lo + (hi - lo) / 2;
        const StepCosts at_mid = anchorCosts(row, batch_bucket, mid);
        const auto lerp = [&](double lo_cost, double hi_cost,
                              std::uint64_t at) {
            const double t = static_cast<double>(at - lo) /
                             static_cast<double>(hi - lo);
            return lo_cost + (hi_cost - lo_cost) * t;
        };
        const auto validates = [&](double lo_cost, double hi_cost,
                                   double mid_cost) {
            return mid_cost >= 0.0 &&
                   std::abs(lerp(lo_cost, hi_cost, mid) -
                            mid_cost) <= mid_cost * 0.01;
        };
        if (!at_mid.saturatedFallback &&
            validates(below.prefill, above.prefill,
                      at_mid.prefill) &&
            validates(below.token, above.token, at_mid.token)) {
            if (column == mid)
                return at_mid;
            StepCosts step;
            step.prefill =
                lerp(below.prefill, above.prefill, column);
            step.token = lerp(below.token, above.token, column);
            return step;
        }
        // The chord misses the midpoint: bisect toward the column
        // and re-validate on the tighter bracket.
        if (column == mid)
            return at_mid;
        if (column < mid)
            hi = mid;
        else
            lo = mid;
    }
}

void
ServingSimulator::shareCostCacheWith(ServingSimulator &other)
{
    hermes_assert(system_ == other.system_ && llm_ == other.llm_ &&
                      config_ == other.config_,
                  "shareCostCacheWith across differing replica "
                  "configurations: costs would not be identical");
    cache_ = other.cache_;
    // Equal full configurations imply equal physics: keep the
    // group's anchor store coherent too, so a group member's exact
    // simulation is visible to physics-equal simulators outside the
    // group.
    anchors_ = other.anchors_;
}

bool
ServingSimulator::shareAnchorStoreWith(ServingSimulator &other)
{
    if (!(system_ == other.system_) || !(llm_ == other.llm_) ||
        config_.engine != other.config_.engine ||
        config_.calibrationTokens !=
            other.config_.calibrationTokens ||
        config_.seed != other.config_.seed)
        return false;
    anchors_ = other.anchors_;
    return true;
}

double
ServingSimulator::calibrationSeconds() const
{
    return cache_->engineSeconds;
}

std::uint64_t
ServingSimulator::calibrationRuns() const
{
    return cache_->engineRuns;
}

void
ServingSimulator::warmCosts(const std::vector<CostProbe> &probes,
                            std::uint32_t threads)
{
    // Reduce the probes to the distinct cost-surface cells they
    // touch.  A row determines its batch bucket (row == log2), so
    // (row, column) is the cell identity.
    struct Key
    {
        std::size_t row;
        std::uint32_t batchBucket;
        std::uint64_t column;
    };
    const auto before = [](const Key &a, const Key &b) {
        return a.row != b.row ? a.row < b.row : a.column < b.column;
    };
    const auto same = [](const Key &a, const Key &b) {
        return a.row == b.row && a.column == b.column;
    };
    std::vector<Key> cells;
    cells.reserve(probes.size());
    for (const CostProbe &probe : probes) {
        const std::uint32_t batch_bucket = std::min(
            powerOfTwoAtLeast(
                std::max<std::uint32_t>(probe.batch, 1)),
            powerOfTwoAtLeast(config_.maxBatch));
        cells.push_back(Key{
            static_cast<std::size_t>(
                std::countr_zero(batch_bucket)),
            batch_bucket, probe.seq / config_.seqBucket});
    }
    std::sort(cells.begin(), cells.end(), before);
    cells.erase(std::unique(cells.begin(), cells.end(), same),
                cells.end());

    // The exact-simulation set those cells need: in Interp mode the
    // bracketing anchors, in Exact mode the cells themselves.
    std::vector<Key> needed;
    needed.reserve(cells.size() * 2);
    for (const Key &cell : cells) {
        if (config_.costModel == CostModel::Interp) {
            const auto [lo, hi] = anchorBracket(cell.column);
            needed.push_back(Key{cell.row, cell.batchBucket, lo});
            if (hi != lo)
                needed.push_back(
                    Key{cell.row, cell.batchBucket, hi});
        } else {
            needed.push_back(cell);
        }
    }
    std::sort(needed.begin(), needed.end(), before);
    needed.erase(std::unique(needed.begin(), needed.end(), same),
                 needed.end());
    std::erase_if(needed, [&](const Key &key) {
        if (findCosts(key.row, key.column) != nullptr)
            return true;
        // A physics-equal simulator may already have run this
        // operating point: adopt from the shared anchor store
        // instead of re-simulating (no engine time billed here —
        // the simulator that ran it already paid).
        std::lock_guard<std::mutex> lock(anchors_->mutex);
        const auto it = anchors_->entries.find(
            {key.batchBucket,
             (key.column + 1) * config_.seqBucket});
        if (it == anchors_->entries.end())
            return false;
        storeCosts(key.row, key.column, it->second);
        return true;
    });

    // `threads` arrives pre-resolved from the fleet layer, but a
    // direct warmCosts(probes, 0) call must still get one worker,
    // not a zero-thread pool.
    const auto workers = static_cast<std::uint32_t>(
        resolveWorkerCount(threads, 1, needed.size()));
    if (workers > 1) {
        // Parallel fill: each worker owns a private engine and a
        // private timing accumulator; results land in a slot array
        // and are inserted sequentially afterwards, so the cache
        // contents are independent of thread interleaving.
        std::vector<StepCosts> computed(needed.size());
        std::vector<double> seconds(workers, 0.0);
        std::atomic<std::size_t> cursor{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::uint32_t w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] {
                auto engine =
                    runtime::makeEngine(config_.engine, system_);
                for (;;) {
                    const std::size_t i =
                        cursor.fetch_add(1,
                                         std::memory_order_relaxed);
                    if (i >= needed.size())
                        break;
                    const auto start =
                        std::chrono::steady_clock::now();
                    computed[i] = simulateCosts(
                        *engine, llm_, config_,
                        needed[i].batchBucket,
                        (needed[i].column + 1) * config_.seqBucket);
                    seconds[w] +=
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            start)
                            .count();
                }
            });
        }
        for (std::thread &thread : pool)
            thread.join();
        for (std::size_t i = 0; i < needed.size(); ++i)
            storeCosts(needed[i].row, needed[i].column,
                       computed[i]);
        for (const double spent : seconds)
            cache_->engineSeconds += spent;
        cache_->engineRuns += needed.size();
        // Publish to the shared anchor store so physics-equal
        // simulators (shareAnchorStoreWith) skip these simulations.
        std::lock_guard<std::mutex> lock(anchors_->mutex);
        for (std::size_t i = 0; i < needed.size(); ++i)
            anchors_->entries.emplace(
                std::pair<std::uint32_t, std::uint64_t>{
                    needed[i].batchBucket,
                    (needed[i].column + 1) * config_.seqBucket},
                computed[i]);
    } else {
        for (const Key &key : needed)
            storeCosts(key.row, key.column,
                       exactCosts(key.batchBucket,
                                  (key.column + 1) *
                                      config_.seqBucket));
    }

    // Materialize the interpolated cells so the event loop's first
    // touch of every probed bucket is a pure cache hit.  Cells whose
    // anchors turned out saturated/unservable fall back to exact
    // simulations here (sequential, pooled engine).
    if (config_.costModel == CostModel::Interp) {
        for (const Key &cell : cells) {
            if (findCosts(cell.row, cell.column) != nullptr)
                continue;
            storeCosts(cell.row, cell.column,
                       interpolatedCosts(cell.row, cell.batchBucket,
                                         cell.column));
        }
    }
}

Seconds
ServingSimulator::prefillSeconds(std::uint32_t batch,
                                 std::uint64_t prompt_tokens)
{
    return std::max(costs(batch, prompt_tokens).prefill, 0.0);
}

Seconds
ServingSimulator::tokenSeconds(std::uint32_t batch,
                               std::uint64_t seq)
{
    return std::max(costs(batch, seq).token, 0.0);
}

bool
ServingSimulator::servable(std::uint32_t batch, std::uint64_t seq)
{
    return costs(batch, seq).token >= 0.0;
}

void
ServingSimulator::beginSession()
{
    requests_.clear();
    metrics_.clear();
    moved_.clear();
    resumed_.clear();
    resumedTokens_.clear();
    cachedTokens_.clear();
    pending_.clear();
    waiting_.clear();
    active_.clear();
    backlogOwed_ = 0;
    sessionKv_.clear();
    kvResidentTokens_ = 0;
    retired_.clear();
    prioritized_ = false;
    clock_ = 0.0;
    inflight_ = StepKind::Idle;
    inflightEnd_ = 0.0;
    inflightDt_ = 0.0;
    inflightGroup_.clear();
    deadChecked_ = false;
    dead_ = false;
    sessionCompleted_ = 0;
    sessionRejected_ = 0;
    generated_ = 0;
    decodeTime_ = 0.0;
    occupancyWeighted_ = 0.0;
    peakBatch_ = 0;
    tokenSamples_.clear();
    ttftSamples_.clear();
    // saturated_ is deliberately sticky: it describes the cost
    // cache, which outlives sessions.
}

void
ServingSimulator::reserveSession(std::size_t expected_requests)
{
    requests_.reserve(expected_requests);
    metrics_.reserve(expected_requests);
    moved_.reserve(expected_requests);
    resumed_.reserve(expected_requests);
    resumedTokens_.reserve(expected_requests);
    cachedTokens_.reserve(expected_requests);
    active_.reserve(config_.maxBatch);
    inflightGroup_.reserve(config_.maxBatch);
    retired_.reserve(config_.maxBatch);
}

void
ServingSimulator::deliver(const ServedRequest &request)
{
    const std::size_t index = requests_.size();
    requests_.push_back(request);
    RequestMetrics metrics;
    metrics.id = request.id;
    metrics.arrival = request.arrival;
    metrics.priority = request.priority;
    metrics_.push_back(metrics);
    moved_.push_back(Moved::No);
    resumed_.push_back(0);
    resumedTokens_.push_back(0);
    cachedTokens_.push_back(0);
    prioritized_ |= request.priority != 0;
    backlogOwed_ += request.generateTokens;
    pending_.push_back(index);
}

void
ServingSimulator::deliverResumed(const ResumableRequest &resumed,
                                 Seconds now,
                                 std::uint64_t cached_tokens)
{
    hermes_assert(resumed.tokensGenerated == 0 ||
                      resumed.tokensGenerated <
                          resumed.request.generateTokens,
                  "deliverResumed: request ", resumed.request.id,
                  " has no tokens left to generate");
    const std::size_t index = requests_.size();
    // The stored copy carries the re-arrival instant for queue
    // ordering; the original arrival lives on in the metrics row.
    ServedRequest stored = resumed.request;
    stored.arrival = now;
    requests_.push_back(stored);
    RequestMetrics metrics;
    metrics.id = resumed.request.id;
    metrics.arrival = resumed.request.arrival;
    metrics.priority = resumed.request.priority;
    metrics.admitted = resumed.admitted;
    metrics.firstToken = resumed.firstToken;
    metrics.tokens = resumed.tokensGenerated;
    metrics.preemptions = resumed.preemptions;
    metrics.migrations = resumed.migrations;
    metrics_.push_back(metrics);
    moved_.push_back(Moved::No);
    resumed_.push_back(1);
    resumedTokens_.push_back(resumed.tokensGenerated);
    cachedTokens_.push_back(
        std::min(cached_tokens, resumed.contextLength()));
    prioritized_ |= resumed.request.priority != 0;
    backlogOwed_ += resumed.request.generateTokens -
                    resumed.tokensGenerated;
    pending_.push_back(index);
}

std::uint64_t
ServingSimulator::consumeSessionKv(std::uint64_t session,
                                   std::uint64_t prompt_tokens)
{
    for (std::size_t k = 0; k < sessionKv_.size(); ++k) {
        if (sessionKv_[k].session != session)
            continue;
        const std::uint64_t cached =
            std::min(sessionKv_[k].tokens, prompt_tokens);
        hermes_assert(kvResidentTokens_ >= sessionKv_[k].tokens,
                      "session KV accounting underflow");
        kvResidentTokens_ -= sessionKv_[k].tokens;
        sessionKv_.erase(sessionKv_.begin() +
                         static_cast<std::ptrdiff_t>(k));
        return cached;
    }
    return 0;
}

void
ServingSimulator::retireSessionKv(std::uint64_t session,
                                  std::uint64_t context_tokens)
{
    // The session's turns run one at a time, so its entry was
    // consumed at admission and is normally absent; fold in any
    // leftover defensively (concurrent same-session turns).
    const std::uint64_t stale = consumeSessionKv(session, 0);
    (void)stale;
    sessionKv_.push_back(SessionKv{session, context_tokens});
    kvResidentTokens_ += context_tokens;
    if (config_.kvCapacityTokens == 0)
        return;
    while (kvResidentTokens_ > config_.kvCapacityTokens &&
           sessionKv_.size() > 1) {
        kvResidentTokens_ -= sessionKv_.front().tokens;
        sessionKv_.erase(sessionKv_.begin());
    }
    // A single conversation larger than the whole budget keeps its
    // KV (evicting the only resident session would thrash every
    // turn); anything beyond that is over-budget by construction.
}

std::uint64_t
ServingSimulator::cachedSessionTokens(std::uint64_t session) const
{
    for (const SessionKv &entry : sessionKv_) {
        if (entry.session == session)
            return entry.tokens;
    }
    return 0;
}

ResumableRequest
ServingSimulator::resumableAt(std::size_t index) const
{
    ResumableRequest out;
    out.request = requests_[index];
    out.request.arrival = metrics_[index].arrival;
    out.tokensGenerated = metrics_[index].tokens;
    out.admitted = metrics_[index].admitted;
    out.firstToken = metrics_[index].firstToken;
    out.preemptions = metrics_[index].preemptions;
    out.migrations = metrics_[index].migrations;
    return out;
}

ResumableRequest
ServingSimulator::preempt(std::uint64_t id)
{
    hermes_assert(!busy(), "preempt mid-step: preemption happens "
                           "at decode boundaries");
    for (auto it = active_.begin(); it != active_.end(); ++it) {
        const std::size_t index = it->index;
        if (metrics_[index].id != id)
            continue;
        ResumableRequest out = resumableAt(index);
        ++out.preemptions;
        moved_[index] = Moved::Preempted;
        hermes_assert(backlogOwed_ >= it->remaining,
                      "backlog underflow preempting request ",
                      metrics_[index].id);
        backlogOwed_ -= it->remaining;
        active_.erase(it);
        return out;
    }
    throw std::logic_error(
        "ServingSimulator::preempt: request " + std::to_string(id) +
        " is not running here (queued/unknown ids cannot be "
        "preempted)");
}

ResumableRequest
ServingSimulator::takeQueued(std::uint64_t id)
{
    const auto extract =
        [&](std::deque<std::size_t> &queue) -> std::ptrdiff_t {
        for (std::size_t k = 0; k < queue.size(); ++k) {
            const std::size_t index = queue[k];
            if (metrics_[index].id != id)
                continue;
            queue.erase(queue.begin() +
                        static_cast<std::ptrdiff_t>(k));
            return static_cast<std::ptrdiff_t>(index);
        }
        return -1;
    };
    std::ptrdiff_t found = extract(waiting_);
    if (found < 0)
        found = extract(pending_);
    if (found < 0)
        throw std::logic_error(
            "ServingSimulator::takeQueued: request " +
            std::to_string(id) + " is not queued here");
    const auto index = static_cast<std::size_t>(found);
    ResumableRequest out = resumableAt(index);
    moved_[index] = Moved::Stolen;
    // A resumed entry contributed only its un-generated remainder
    // at delivery; subtract exactly that so the counter returns to
    // its pre-delivery value.
    const std::uint64_t owed = requests_[index].generateTokens -
                               resumedTokens_[index];
    hermes_assert(backlogOwed_ >= owed,
                  "backlog underflow taking queued request ",
                  metrics_[index].id);
    backlogOwed_ -= owed;
    return out;
}

RequestState
ServingSimulator::stateOf(std::uint64_t id) const
{
    // Newest entry wins: a locally resumed request shadows the
    // Preempted entry it left behind.
    for (std::size_t i = metrics_.size(); i-- > 0;) {
        if (metrics_[i].id != id)
            continue;
        if (moved_[i] == Moved::Preempted)
            return RequestState::Preempted;
        if (moved_[i] == Moved::Stolen)
            return RequestState::Unknown;
        for (const std::size_t index : inflightGroup_) {
            if (index == i)
                return RequestState::Prefilling;
        }
        for (const Running &running : active_) {
            if (running.index == i)
                return RequestState::Running;
        }
        for (const std::size_t index : waiting_) {
            if (index == i)
                return RequestState::Queued;
        }
        for (const std::size_t index : pending_) {
            if (index == i)
                return RequestState::Queued;
        }
        return metrics_[i].rejected ? RequestState::Shed
                                    : RequestState::Done;
    }
    return RequestState::Unknown;
}

StepAction
ServingSimulator::startNextWork(Seconds now)
{
    hermes_assert(!busy(), "startNextWork with work in flight");

    // Capability probe at the first observed request — the same
    // batch-1 probe the closed loop ran up front.  A dead replica
    // (platform cannot run the model) holds every delivery without
    // advancing its clock; finishSession rejects the holdovers,
    // reproducing the whole-trace rejection of the old path.  Held
    // requests stay visible to observed-state routing and remain
    // stealable, so feedback policies and work stealing can route
    // around the failure.
    if (!deadChecked_ && !pending_.empty()) {
        deadChecked_ = true;
        dead_ =
            costs(1, requests_[pending_.front()].promptTokens)
                .token < 0.0;
    }
    if (dead_)
        return StepAction{StepKind::Idle, clock_};

    hermes_assert(now >= clock_,
                  "startNextWork walks the clock backwards");
    clock_ = now;

    // Observe due arrivals, rejecting past the queue limit.  Free
    // batch slots count as queue capacity: an arrival that will be
    // admitted this very boundary is not "queued".
    const std::size_t free_slots =
        config_.maxBatch > active_.size()
            ? config_.maxBatch - active_.size()
            : 0;
    while (!pending_.empty() &&
           requests_[pending_.front()].arrival <= clock_) {
        const std::size_t index = pending_.front();
        pending_.pop_front();
        // Resumed entries held queue capacity once already — a
        // preempted request is never dropped at its own requeue.
        // Discriminated by the explicit flag: a zero-token resumed
        // entry (taken from a queue before its first prefill) is
        // just as exempt as one with progress.
        if (!resumed_[index] &&
            waiting_.size() >= config_.maxQueue + free_slots) {
            metrics_[index].rejected = true;
            ++sessionRejected_;
            hermes_assert(backlogOwed_ >=
                              requests_[index].generateTokens,
                          "backlog underflow shedding request ",
                          metrics_[index].id);
            backlogOwed_ -= requests_[index].generateTokens;
        } else {
            waiting_.push_back(index);
        }
    }

    if (active_.empty() && waiting_.empty()) {
        if (pending_.empty())
            return StepAction{StepKind::Idle, clock_};
        return StepAction{
            StepKind::WaitArrival,
            requests_[pending_.front()].arrival};
    }

    // Continuous batching: fill free slots from the queue — highest
    // priority first, FIFO among equals, so all-default-priority
    // traffic admits in the historical order — then run the joint
    // prefill of the admitted group, or, with nobody newly
    // admitted, one decode step for the whole running batch.
    inflightGroup_.clear();
    while (!waiting_.empty() &&
           active_.size() < config_.maxBatch) {
        // Fast path: a session that never saw a non-default
        // priority admits pure FIFO without scanning the queue —
        // this is the kernel hot path the events/sec bench tracks.
        std::size_t pick = 0;
        if (prioritized_) {
            for (std::size_t k = 1; k < waiting_.size(); ++k) {
                if (requests_[waiting_[k]].priority >
                    requests_[waiting_[pick]].priority)
                    pick = k;
            }
        }
        const std::size_t index = waiting_[pick];
        waiting_.erase(waiting_.begin() +
                       static_cast<std::ptrdiff_t>(pick));
        if (resumedTokens_[index] == 0)
            metrics_[index].admitted = clock_;
        inflightGroup_.push_back(index);
        active_.push_back(Running{
            index,
            requests_[index].generateTokens -
                resumedTokens_[index],
            requests_[index].promptTokens +
                resumedTokens_[index]});
    }
    if (!inflightGroup_.empty()) {
        // A fresh request prefills its whole prompt; a resumed one
        // only the context suffix its host has no KV for — zero
        // when the KV was retained locally or transferred ahead of
        // the delivery, in which case rejoining is free.  A fresh
        // *session turn* consumes its conversation's resident KV:
        // the cached history prefix is free, only the new suffix is
        // charged.  (The entry leaves the LRU table while in use —
        // pinned by the running request — and returns, grown, when
        // the turn retires.)
        std::uint64_t max_prompt = 0;
        for (const std::size_t index : inflightGroup_) {
            std::uint64_t charged;
            if (resumedTokens_[index] == 0) {
                charged = std::max<std::uint64_t>(
                    requests_[index].promptTokens, 1);
                if (!resumed_[index] &&
                    requests_[index].sessionId != 0) {
                    const std::uint64_t cached = consumeSessionKv(
                        requests_[index].sessionId,
                        requests_[index].promptTokens);
                    charged = requests_[index].promptTokens > cached
                                  ? requests_[index].promptTokens -
                                        cached
                                  : 0;
                }
            } else {
                const std::uint64_t context =
                    static_cast<std::uint64_t>(
                        requests_[index].promptTokens) +
                    resumedTokens_[index];
                charged = context - cachedTokens_[index];
            }
            max_prompt = std::max(max_prompt, charged);
        }
        // max(0): a bucket probe can come back unsupported (KV
        // growth at large batch); serve it at zero extra cost
        // rather than walking the clock backwards.
        const Seconds prefill =
            max_prompt == 0
                ? 0.0
                : std::max(
                      costs(static_cast<std::uint32_t>(
                                inflightGroup_.size()),
                            max_prompt)
                          .prefill,
                      0.0);
        inflight_ = StepKind::Prefill;
        inflightEnd_ = clock_ + prefill;
    } else {
        const auto batch =
            static_cast<std::uint32_t>(active_.size());
        std::uint64_t max_seq = 1;
        for (const Running &running : active_)
            max_seq = std::max(max_seq, running.seq);
        inflightDt_ = std::max(costs(batch, max_seq).token, 0.0);
        inflight_ = StepKind::Decode;
        inflightEnd_ = clock_ + inflightDt_;
    }
    peakBatch_ = std::max(
        peakBatch_, static_cast<std::uint32_t>(active_.size()));
    return StepAction{inflight_, inflightEnd_};
}

const std::vector<std::uint64_t> &
ServingSimulator::completeWork()
{
    hermes_assert(busy(), "completeWork with nothing in flight");
    clock_ = inflightEnd_;
    if (inflight_ == StepKind::Prefill) {
        for (const std::size_t index : inflightGroup_) {
            // A resumed request already emitted its first token on
            // some earlier admission; its TTFT is sampled once.
            if (resumedTokens_[index] == 0) {
                metrics_[index].firstToken = clock_;
                ttftSamples_.push_back(metrics_[index].ttft());
            }
        }
        // Prefill produces the (next) token.  The admitted group
        // occupies the tail of `active_` (just pushed).
        for (std::size_t k =
                 active_.size() - inflightGroup_.size();
             k < active_.size(); ++k) {
            Running &running = active_[k];
            if (running.remaining > 0) {
                ++metrics_[running.index].tokens;
                --running.remaining;
                ++running.seq;
                ++generated_;
                --backlogOwed_;
            }
        }
    } else {
        const auto batch =
            static_cast<std::uint32_t>(active_.size());
        decodeTime_ += inflightDt_;
        occupancyWeighted_ +=
            static_cast<double>(batch) * inflightDt_;
        // Every running request owes at least the token this step
        // emits; once per step, not per token (hot path).
        hermes_assert(backlogOwed_ >= active_.size(),
                      "backlog underflow in decode step");
        for (Running &running : active_) {
            ++metrics_[running.index].tokens;
            --running.remaining;
            ++running.seq;
            ++generated_;
            --backlogOwed_;
            tokenSamples_.push_back(inflightDt_);
        }
    }
    inflight_ = StepKind::Idle;
    inflightGroup_.clear();

    // Retire finished requests: one order-preserving compaction
    // pass into the reused retired-ids buffer.
    retired_.clear();
    std::size_t write = 0;
    for (std::size_t read = 0; read < active_.size(); ++read) {
        const Running &running = active_[read];
        if (running.remaining == 0) {
            metrics_[running.index].completed = clock_;
            ++sessionCompleted_;
            retired_.push_back(metrics_[running.index].id);
            // The turn's full context (running.seq = prompt +
            // generated) stays warm for the session's next turn,
            // subject to the KV budget.
            if (requests_[running.index].sessionId != 0)
                retireSessionKv(requests_[running.index].sessionId,
                                running.seq);
        } else {
            active_[write++] = running;
        }
    }
    active_.resize(write);
    return retired_;
}

ServingReport
ServingSimulator::finishSession()
{
    hermes_assert(!busy() && active_.empty(),
                  "finishSession with work in flight");

    // Whatever is still queued was never served (only a dead
    // replica ends a drained session with holdovers).
    for (const std::size_t index : pending_) {
        metrics_[index].rejected = true;
        ++sessionRejected_;
    }
    for (const std::size_t index : waiting_) {
        metrics_[index].rejected = true;
        ++sessionRejected_;
    }
    pending_.clear();
    waiting_.clear();
    backlogOwed_ = 0;

    ServingReport report;
    report.engine = runtime::engineKindName(config_.engine);
    report.requests.reserve(metrics_.size());
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        if (moved_[i] == Moved::No)
            report.requests.push_back(metrics_[i]);
    }
    report.completed = sessionCompleted_;
    report.rejected = sessionRejected_;
    report.makespan = clock_;
    report.peakBatch = peakBatch_;
    report.costModelSaturated = saturated_;
    report.throughputTps =
        clock_ > 0.0
            ? static_cast<double>(generated_) / clock_
            : 0.0;
    report.meanBatchOccupancy =
        decodeTime_ > 0.0 ? occupancyWeighted_ / decodeTime_ : 0.0;
    report.p50TokenLatency = percentile(tokenSamples_, 50.0);
    report.p90TokenLatency = percentile(tokenSamples_, 90.0);
    report.p99TokenLatency = percentile(tokenSamples_, 99.0);
    report.p50Ttft = percentile(ttftSamples_, 50.0);
    report.p99Ttft = percentile(ttftSamples_, 99.0);
    return report;
}

std::uint32_t
ServingSimulator::observedOutstanding() const
{
    return static_cast<std::uint32_t>(
        active_.size() + waiting_.size() + pending_.size());
}

double
ServingSimulator::observedBacklogTokens() const
{
    // Incrementally maintained (see backlogOwed_): token counts are
    // integral, so this equals the historical walk over active_ +
    // waiting_ + pending_ exactly.
    return static_cast<double>(backlogOwed_);
}

std::vector<RequestInfo>
ServingSimulator::runningInfos() const
{
    std::vector<RequestInfo> out;
    out.reserve(active_.size());
    for (const Running &running : active_) {
        RequestInfo info;
        info.id = metrics_[running.index].id;
        info.priority = requests_[running.index].priority;
        info.arrival = metrics_[running.index].arrival;
        info.tokensGenerated = metrics_[running.index].tokens;
        info.remainingTokens = running.remaining;
        out.push_back(info);
    }
    return out;
}

std::vector<RequestInfo>
ServingSimulator::queuedInfos() const
{
    std::vector<RequestInfo> out;
    out.reserve(waiting_.size() + pending_.size());
    const auto append = [&](const std::deque<std::size_t> &queue) {
        for (const std::size_t index : queue) {
            RequestInfo info;
            info.id = metrics_[index].id;
            info.priority = requests_[index].priority;
            info.arrival = metrics_[index].arrival;
            info.tokensGenerated = metrics_[index].tokens;
            info.remainingTokens =
                requests_[index].generateTokens -
                resumedTokens_[index];
            out.push_back(info);
        }
    };
    append(waiting_);
    append(pending_);
    return out;
}

std::uint32_t
ServingSimulator::queuedCount() const
{
    return static_cast<std::uint32_t>(waiting_.size() +
                                      pending_.size());
}

ReplicaSnapshot
ServingSimulator::snapshot() const
{
    ReplicaSnapshot snap;
    snap.outstanding = observedOutstanding();
    snap.queued = queuedCount();
    snap.backlogTokens = observedBacklogTokens();
    snap.busy = busy();
    snap.knownServable = knownServable();
    snap.knownDead = knownDead();
    snap.runningRequests = runningInfos();
    snap.queuedRequests = queuedInfos();
    snap.cachedSessions = sessionKv_;
    return snap;
}

std::vector<ServedRequest>
ServingSimulator::stealQueued(std::uint32_t count)
{
    // Newest arrivals first: under FIFO admission those would wait
    // the longest here, so they gain the most from moving.  Resumed
    // entries are skipped — even zero-token ones carry resume state
    // (lifecycle counters, original timestamps) a plain steal would
    // silently drop (see header).
    std::vector<ServedRequest> out;
    const auto take_from = [&](std::deque<std::size_t> &queue) {
        for (std::size_t k = queue.size();
             k-- > 0 && out.size() < count;) {
            const std::size_t index = queue[k];
            if (resumed_[index])
                continue;
            queue.erase(queue.begin() +
                        static_cast<std::ptrdiff_t>(k));
            moved_[index] = Moved::Stolen;
            hermes_assert(backlogOwed_ >=
                              requests_[index].generateTokens,
                          "backlog underflow stealing request ",
                          metrics_[index].id);
            backlogOwed_ -= requests_[index].generateTokens;
            out.push_back(requests_[index]);
        }
    };
    take_from(pending_);
    take_from(waiting_);
    std::sort(out.begin(), out.end(),
              [](const ServedRequest &a, const ServedRequest &b) {
                  return a.arrival != b.arrival
                             ? a.arrival < b.arrival
                             : a.id < b.id;
              });
    return out;
}

ServingReport
ServingSimulator::run(std::vector<ServedRequest> workload)
{
    sortByArrival(workload);
    beginSession();
    reserveSession(workload.size());
    for (const ServedRequest &request : workload)
        deliver(request);
    // The closed loop is the stepwise protocol driven locally: the
    // only difference from the fleet kernel is that idle gaps are
    // skipped by re-entering at the next arrival instant.
    for (;;) {
        if (busy())
            completeWork();
        StepAction action = startNextWork(clock_);
        if (action.kind == StepKind::WaitArrival)
            action = startNextWork(action.until);
        if (action.kind == StepKind::Idle)
            break;
    }
    return finishSession();
}

std::vector<ServedRequest>
syntheticWorkload(std::uint32_t count, double arrivals_per_second,
                  std::uint32_t prompt_tokens,
                  std::uint32_t generate_tokens, std::uint64_t seed)
{
    std::vector<ServedRequest> workload;
    workload.reserve(count);
    Rng rng(seed ^ 0x5e417a77ULL);
    Seconds clock = 0.0;
    for (std::uint32_t i = 0; i < count; ++i) {
        ServedRequest request;
        request.id = i;
        request.arrival = clock;
        request.promptTokens = prompt_tokens;
        request.generateTokens = generate_tokens;
        workload.push_back(request);
        if (arrivals_per_second > 0.0) {
            // Exponential inter-arrival; clamp the tail so one freak
            // gap cannot dominate a short trace.
            const double u =
                std::max(rng.uniform(), 1.0e-12);
            clock += std::min(-std::log(u) / arrivals_per_second,
                              100.0 / arrivals_per_second);
        }
    }
    return workload;
}

Seconds
percentile(std::vector<Seconds> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    const double rank =
        clamped / 100.0 *
        static_cast<double>(values.size() - 1);
    const auto low = static_cast<std::size_t>(rank);
    const std::size_t high =
        std::min(low + 1, values.size() - 1);
    const double fraction = rank - static_cast<double>(low);
    return values[low] +
           (values[high] - values[low]) * fraction;
}

} // namespace hermes::serving
