#include "dram/timing.hh"

namespace hermes::dram {

TimingParams
ddr4_3200()
{
    return TimingParams{};
}

TimingParams
ddr4_2400()
{
    TimingParams t;
    t.clockHz = 1200.0e6;
    t.tRC = 57;
    t.tRCD = 18;
    t.tCL = 18;
    t.tRP = 18;
    t.tBL = 4;
    t.tCCD_S = 4;
    t.tCCD_L = 6;
    t.tRRD_S = 4;
    t.tRRD_L = 5;
    t.tFAW = 21;
    t.tRAS = 39;
    t.tRTP = 9;
    t.tREFI = 9360;
    t.tRFC = 420;
    return t;
}

} // namespace hermes::dram
