#include "dram/controller.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.hh"

namespace hermes::dram {

namespace {

constexpr Cycles kNever = std::numeric_limits<Cycles>::max();

} // namespace

RankController::RankController(const DimmConfig &config) : config_(config)
{
    hermes_assert(config_.bankGroups > 0 && config_.banksPerGroup > 0);
}

std::uint32_t
RankController::flatBank(std::uint32_t bg, std::uint32_t bank) const
{
    return bg * config_.banksPerGroup + bank;
}

ControllerStats
RankController::simulate(const std::vector<RowRead> &reads)
{
    const TimingParams &t = config_.timing;
    const std::uint32_t num_banks = config_.banksPerRank();

    std::vector<BankState> banks(num_banks);
    std::deque<PendingRead> queue;
    for (const auto &read : reads) {
        hermes_assert(read.bankGroup < config_.bankGroups &&
                      read.bank < config_.banksPerGroup,
                      "request outside rank geometry");
        queue.push_back(PendingRead{read, 0});
    }

    ControllerStats stats;
    Cycles now = 0;

    // Rank-wide constraint trackers.
    std::deque<Cycles> act_window;       // Last ACT times, for tFAW.
    Cycles last_act = 0;                 // For tRRD_S.
    bool any_act = false;
    std::vector<Cycles> last_act_group(config_.bankGroups, 0);
    std::vector<bool> any_act_group(config_.bankGroups, false);
    Cycles last_read = 0;                // For tCCD.
    std::uint32_t last_read_group = 0;
    bool any_read = false;
    Cycles bus_free = 0;                 // Data bus availability.
    Cycles next_refresh = t.tREFI;
    Cycles last_data = 0;

    auto apply_refresh = [&](Cycles upto) {
        while (next_refresh <= upto) {
            // All-bank refresh: close every row and stall the rank.
            const Cycles resume = next_refresh + t.tRFC;
            for (auto &bank : banks) {
                bank.openRow = -1;
                bank.nextActivate = std::max(bank.nextActivate, resume);
                bank.nextRead = std::max(bank.nextRead, resume);
                bank.nextPrecharge = std::max(bank.nextPrecharge, resume);
            }
            ++stats.refreshes;
            next_refresh += t.tREFI;
        }
    };

    // Earliest cycle an ACT may issue to the given bank group, given
    // rank-wide activate constraints.
    auto act_ready = [&](std::uint32_t bg, Cycles bank_ready) {
        Cycles ready = std::max(now, bank_ready);
        if (any_act)
            ready = std::max(ready, last_act + t.tRRD_S);
        if (any_act_group[bg])
            ready = std::max(ready, last_act_group[bg] + t.tRRD_L);
        if (act_window.size() >= 4)
            ready = std::max(ready, act_window.front() + t.tFAW);
        return ready;
    };

    auto read_ready = [&](std::uint32_t bg, Cycles bank_ready) {
        Cycles ready = std::max(now, bank_ready);
        if (any_read) {
            const Cycles ccd =
                (bg == last_read_group) ? t.tCCD_L : t.tCCD_S;
            ready = std::max(ready, last_read + ccd);
        }
        // Data bus: next burst's data window must not overlap the
        // previous one.  All reads share tCL, so spacing the command by
        // the remaining bus occupancy is exact.
        if (bus_free > t.tCL)
            ready = std::max(ready, bus_free - t.tCL);
        return ready;
    };

    while (!queue.empty()) {
        const std::size_t scan =
            fcfs_ ? 1 : std::min<std::size_t>(queue.size(), window_);

        // Pass 1: find the best issuable command in the window.
        // FR-FCFS: row-hit reads first (earliest ready; ties to the
        // oldest), otherwise the oldest request's next command.
        std::size_t best_idx = scan;
        Cycles best_time = kNever;
        bool best_is_hit = false;

        for (std::size_t i = 0; i < scan; ++i) {
            const PendingRead &pending = queue[i];
            const RowRead &req = pending.request;
            const BankState &bank =
                banks[flatBank(req.bankGroup, req.bank)];
            const bool hit =
                bank.openRow == static_cast<std::int64_t>(req.row);

            Cycles when;
            if (hit) {
                when = read_ready(req.bankGroup, bank.nextRead);
            } else if (bank.openRow < 0) {
                when = act_ready(req.bankGroup, bank.nextActivate);
            } else {
                // Row conflict: only precharge if no younger window
                // entry still wants the open row in this bank.
                bool wanted = false;
                for (std::size_t j = 0; j < scan && !wanted; ++j) {
                    const RowRead &other = queue[j].request;
                    wanted = j != i &&
                             other.bankGroup == req.bankGroup &&
                             other.bank == req.bank &&
                             static_cast<std::int64_t>(other.row) ==
                                 bank.openRow;
                }
                if (wanted && !fcfs_)
                    continue;
                when = std::max(now, bank.nextPrecharge);
            }

            // Issue the command that is ready soonest so ACTs to idle
            // banks overlap with in-flight column reads; among commands
            // ready at the same cycle, prefer row hits (FR-FCFS), then
            // the oldest request.
            const bool better =
                when < best_time ||
                (when == best_time && hit && !best_is_hit);
            if (better) {
                best_idx = i;
                best_time = when;
                best_is_hit = hit;
            }
        }

        hermes_assert(best_idx < scan, "scheduler deadlock");

        PendingRead &pending = queue[best_idx];
        const RowRead &req = pending.request;
        BankState &bank = banks[flatBank(req.bankGroup, req.bank)];
        const bool hit =
            bank.openRow == static_cast<std::int64_t>(req.row);

        apply_refresh(best_time);

        if (hit) {
            const Cycles issue = read_ready(req.bankGroup, bank.nextRead);
            now = std::max(now, issue) + 1; // Command bus: 1 cmd/cycle.
            last_read = issue;
            last_read_group = req.bankGroup;
            any_read = true;
            bus_free = issue + t.tCL + t.tBL;
            last_data = std::max(last_data, bus_free);
            bank.nextPrecharge =
                std::max(bank.nextPrecharge, issue + t.tRTP);
            ++stats.reads;
            if (++pending.burstsDone >= req.bursts)
                queue.erase(queue.begin() +
                            static_cast<std::ptrdiff_t>(best_idx));
        } else if (bank.openRow < 0) {
            const Cycles issue =
                act_ready(req.bankGroup, bank.nextActivate);
            now = std::max(now, issue) + 1;
            bank.openRow = static_cast<std::int64_t>(req.row);
            bank.nextRead = issue + t.tRCD;
            bank.nextPrecharge = issue + t.tRAS;
            bank.nextActivate = issue + t.tRC;
            last_act = issue;
            any_act = true;
            last_act_group[req.bankGroup] = issue;
            any_act_group[req.bankGroup] = true;
            act_window.push_back(issue);
            while (act_window.size() > 4)
                act_window.pop_front();
            ++stats.activates;
        } else {
            const Cycles issue = std::max(now, bank.nextPrecharge);
            now = std::max(now, issue) + 1;
            bank.openRow = -1;
            bank.nextActivate =
                std::max(bank.nextActivate, issue + t.tRP);
            ++stats.precharges;
        }
    }

    // Every RD issues against an open row; reads that did not require a
    // fresh ACT of their row are the row-buffer hits.
    stats.rowHits = stats.reads >= stats.activates
                        ? stats.reads - stats.activates
                        : 0;
    stats.finishCycle = last_data;
    return stats;
}

BytesPerSecond
RankController::measuredBandwidth(const std::vector<RowRead> &reads)
{
    if (reads.empty())
        return 0.0;
    Bytes total = 0;
    for (const auto &read : reads)
        total += static_cast<Bytes>(read.bursts) * config_.burstBytes;
    const ControllerStats stats = simulate(reads);
    if (stats.finishCycle == 0)
        return 0.0;
    return static_cast<double>(total) /
           config_.timing.toSeconds(stats.finishCycle);
}

} // namespace hermes::dram
