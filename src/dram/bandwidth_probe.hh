/**
 * @file
 * Derives sustained bandwidth figures from the cycle-level rank model.
 *
 * The NDP GEMV unit streams neuron weight chunks whose placement in the
 * DIMM is scattered (cold neurons are remapped over time), so the
 * relevant figure is the bandwidth of reading many row-sized chunks at
 * effectively random row addresses, with bank-group interleaving
 * provided by the address mapper.  Probes run the command-level
 * simulation once per distinct access shape and memoize the result, so
 * engine-level simulations stay fast.
 */

#ifndef HERMES_DRAM_BANDWIDTH_PROBE_HH
#define HERMES_DRAM_BANDWIDTH_PROBE_HH

#include <cstdint>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "dram/config.hh"
#include "dram/controller.hh"

namespace hermes::dram {

/** Access-pattern families the probe can measure. */
enum class AccessPattern
{
    SequentialRows,   ///< Dense streaming of consecutive rows.
    ScatteredRows,    ///< Full-row reads at random row addresses.
    ScatteredBursts,  ///< Single-burst reads at random addresses.
};

/**
 * Measures and memoizes sustained per-rank bandwidth for a DIMM
 * configuration and access pattern.
 */
class BandwidthProbe
{
  public:
    explicit BandwidthProbe(const DimmConfig &config) : config_(config) {}

    /**
     * Sustained bandwidth of one rank for the given pattern.
     *
     * @param pattern      Access-pattern family.
     * @param sample_rows  Number of row-chunks to simulate (larger
     *                     values amortize the cold-start transient).
     */
    BytesPerSecond rankBandwidth(AccessPattern pattern,
                                 std::uint64_t sample_rows = 512);

    /**
     * Sustained internal bandwidth visible to the NDP core: the
     * per-rank figure scaled by the configured rank parallelism.
     */
    BytesPerSecond internalBandwidth(AccessPattern pattern);

    /**
     * Time for the NDP core to stream `bytes` of weight data laid out
     * as scattered rows across all parallel ranks.
     */
    Seconds streamTime(Bytes bytes, AccessPattern pattern);

    const DimmConfig &config() const { return config_; }

  private:
    std::vector<RowRead> buildPattern(AccessPattern pattern,
                                      std::uint64_t sample_rows);

    DimmConfig config_;
    std::map<std::pair<int, std::uint64_t>, BytesPerSecond> cache_;
};

} // namespace hermes::dram

#endif // HERMES_DRAM_BANDWIDTH_PROBE_HH
