/**
 * @file
 * DDR4 device timing parameters.
 *
 * All values are in DRAM command-clock cycles.  For DDR4-3200 the
 * command clock runs at 1600 MHz (0.625 ns per cycle, two data
 * transfers per cycle on the DQ pins).  The default values reproduce
 * Table II of the Hermes paper, with the handful of parameters the
 * table omits (tRAS, tWR, tRTP, refresh) filled in from the JEDEC
 * DDR4-3200AA speed bin.
 */

#ifndef HERMES_DRAM_TIMING_HH
#define HERMES_DRAM_TIMING_HH

#include <cstdint>

#include "common/units.hh"

namespace hermes::dram {

/** DDR4 timing parameters, in command-clock cycles. */
struct TimingParams
{
    /** Command clock frequency in Hz (1600 MHz for DDR4-3200). */
    double clockHz = 1600.0e6;

    Cycles tRC = 76;    ///< ACT -> ACT, same bank.
    Cycles tRCD = 24;   ///< ACT -> RD/WR, same bank.
    Cycles tCL = 24;    ///< RD -> first data.
    Cycles tRP = 24;    ///< PRE -> ACT, same bank.
    Cycles tBL = 4;     ///< Burst length on the bus (BL8, DDR).
    Cycles tCCD_S = 4;  ///< RD -> RD, different bank group.
    Cycles tCCD_L = 8;  ///< RD -> RD, same bank group.
    Cycles tRRD_S = 4;  ///< ACT -> ACT, different bank group.
    Cycles tRRD_L = 6;  ///< ACT -> ACT, same bank group.
    Cycles tFAW = 26;   ///< Four-activate window per rank.

    // Parameters not listed in Table II, JEDEC DDR4-3200 values.
    Cycles tRAS = 52;     ///< ACT -> PRE, same bank (tRC - tRP).
    Cycles tRTP = 12;     ///< RD -> PRE, same bank.
    Cycles tREFI = 12480; ///< Average refresh interval (7.8 us).
    Cycles tRFC = 560;    ///< Refresh cycle time (350 ns, 16 Gb dies).

    bool operator==(const TimingParams &) const = default;

    /** Seconds per command-clock cycle. */
    double clockPeriod() const { return 1.0 / clockHz; }

    /** Convert cycles of this clock domain to seconds. */
    Seconds
    toSeconds(Cycles cycles) const
    {
        return cyclesToSeconds(cycles, clockHz);
    }
};

/** Table II DDR4-3200 timings (the defaults). */
TimingParams ddr4_3200();

/** Slower DDR4-2400 bin, used by sensitivity tests. */
TimingParams ddr4_2400();

} // namespace hermes::dram

#endif // HERMES_DRAM_TIMING_HH
