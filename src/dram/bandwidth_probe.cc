#include "dram/bandwidth_probe.hh"

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace hermes::dram {

std::vector<RowRead>
BandwidthProbe::buildPattern(AccessPattern pattern,
                             std::uint64_t sample_rows)
{
    AddressMapper mapper(config_);
    const auto bursts_per_row =
        static_cast<std::uint32_t>(config_.rowBytes / config_.burstBytes);
    const std::uint64_t chunk_space =
        config_.rowsPerBank() *
        static_cast<std::uint64_t>(config_.banksPerRank());

    // Deterministic probe: identical configs yield identical numbers.
    Rng rng(0xd1553c0ffee + static_cast<std::uint64_t>(pattern));

    std::vector<RowRead> reads;
    reads.reserve(sample_rows);
    for (std::uint64_t i = 0; i < sample_rows; ++i) {
        std::uint64_t idx;
        std::uint32_t bursts;
        switch (pattern) {
          case AccessPattern::SequentialRows:
            idx = i;
            bursts = bursts_per_row;
            break;
          case AccessPattern::ScatteredRows:
            idx = rng.below(chunk_space);
            bursts = bursts_per_row;
            break;
          case AccessPattern::ScatteredBursts:
            idx = rng.below(chunk_space);
            bursts = 1;
            break;
          default:
            hermes_panic("unknown access pattern");
        }
        reads.push_back(mapper.mapRowChunk(idx, bursts));
    }
    return reads;
}

BytesPerSecond
BandwidthProbe::rankBandwidth(AccessPattern pattern,
                              std::uint64_t sample_rows)
{
    const auto key = std::make_pair(static_cast<int>(pattern),
                                    sample_rows);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    RankController controller(config_);
    const BytesPerSecond bw =
        controller.measuredBandwidth(buildPattern(pattern, sample_rows));
    cache_.emplace(key, bw);
    return bw;
}

BytesPerSecond
BandwidthProbe::internalBandwidth(AccessPattern pattern)
{
    return rankBandwidth(pattern) * config_.rankParallelism;
}

Seconds
BandwidthProbe::streamTime(Bytes bytes, AccessPattern pattern)
{
    if (bytes == 0)
        return 0.0;
    const BytesPerSecond bw = internalBandwidth(pattern);
    hermes_assert(bw > 0.0, "probe produced zero bandwidth");
    return static_cast<double>(bytes) / bw;
}

} // namespace hermes::dram
