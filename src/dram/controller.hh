/**
 * @file
 * Command-level timing simulation of one DDR4 rank.
 *
 * The NDP center buffer taps each rank's data bus independently, so the
 * simulator models a single rank (2 bank groups x 4 banks sharing one
 * command bus and one 64-bit data bus) and the DIMM aggregates up to
 * DimmConfig::rankParallelism concurrent rank streams.
 *
 * The controller implements:
 *  - open-page policy with FR-FCFS scheduling over a lookahead window,
 *  - all Table II constraints (tRC, tRCD, tCL, tRP, tBL, tCCD_S/L,
 *    tRRD_S/L, tFAW) plus tRAS/tRTP/refresh,
 *  - one command per command-clock cycle on the shared command bus.
 *
 * Inputs are streams of row-read requests (a row id plus a burst
 * count); the output is the cycle at which the last data beat leaves
 * the rank, from which sustained bandwidth is derived.
 */

#ifndef HERMES_DRAM_CONTROLLER_HH
#define HERMES_DRAM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "dram/config.hh"

namespace hermes::dram {

/** A read of `bursts` consecutive bursts from one DRAM row. */
struct RowRead
{
    std::uint32_t bankGroup = 0;
    std::uint32_t bank = 0;     ///< Bank index within the bank group.
    std::uint64_t row = 0;
    std::uint32_t bursts = 1;
};

/**
 * Maps a linear "chunk" index to rank-local coordinates, interleaving
 * consecutive chunks across bank groups first (to exploit tCCD_S),
 * then banks, then rows.
 */
class AddressMapper
{
  public:
    explicit AddressMapper(const DimmConfig &config) : config_(config) {}

    /** Coordinates of the idx-th row-sized chunk in this rank. */
    RowRead
    mapRowChunk(std::uint64_t idx, std::uint32_t bursts) const
    {
        RowRead read;
        read.bankGroup = static_cast<std::uint32_t>(
            idx % config_.bankGroups);
        read.bank = static_cast<std::uint32_t>(
            (idx / config_.bankGroups) % config_.banksPerGroup);
        read.row = idx / (static_cast<std::uint64_t>(config_.bankGroups) *
                          config_.banksPerGroup);
        read.bursts = bursts;
        return read;
    }

  private:
    const DimmConfig &config_;
};

/** Aggregate statistics from one controller simulation. */
struct ControllerStats
{
    std::uint64_t activates = 0;
    std::uint64_t reads = 0;       ///< RD commands (one burst each).
    std::uint64_t precharges = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t rowHits = 0;     ///< RDs that hit an open row.
    Cycles finishCycle = 0;        ///< Last data beat.
};

/**
 * Cycle/command-level model of one rank.  Stateless across simulate()
 * calls: each call starts from an idle, all-banks-precharged rank.
 */
class RankController
{
  public:
    explicit RankController(const DimmConfig &config);

    /**
     * Simulate the request stream and return timing statistics.
     *
     * @param reads Row reads, in arrival order.  FR-FCFS may reorder
     *              service within the lookahead window.
     */
    ControllerStats simulate(const std::vector<RowRead> &reads);

    /** Sustained read bandwidth achieved for the request stream. */
    BytesPerSecond measuredBandwidth(const std::vector<RowRead> &reads);

    /** Scheduling lookahead window (FR-FCFS scan depth). */
    void setWindow(std::uint32_t window) { window_ = window; }

    /** Disable reordering entirely (plain FCFS) for ablation. */
    void setFcfs(bool fcfs) { fcfs_ = fcfs; }

  private:
    struct BankState
    {
        std::int64_t openRow = -1;
        Cycles nextActivate = 0;
        Cycles nextRead = 0;
        Cycles nextPrecharge = 0;
    };

    struct PendingRead
    {
        RowRead request;
        std::uint32_t burstsDone = 0;
    };

    std::uint32_t flatBank(std::uint32_t bg, std::uint32_t bank) const;

    const DimmConfig config_;
    std::uint32_t window_ = 16;
    bool fcfs_ = false;
};

} // namespace hermes::dram

#endif // HERMES_DRAM_CONTROLLER_HH
