/**
 * @file
 * Geometry of one DIMM as seen by the NDP center buffer.
 *
 * Table II: 32 GB/DIMM, 4 ranks/DIMM, 2 bank groups/rank,
 * 4 banks/bank-group.  Each rank presents a 64-bit (8-byte) data bus;
 * one BL8 burst moves 64 bytes.  The center-buffer NDP design taps the
 * per-rank data buses through the buffer chip, so ranks can stream
 * concurrently (rankParallelism).
 */

#ifndef HERMES_DRAM_CONFIG_HH
#define HERMES_DRAM_CONFIG_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/units.hh"
#include "dram/timing.hh"

namespace hermes::dram {

/** Static geometry and timing of one DIMM. */
struct DimmConfig
{
    TimingParams timing{};

    Bytes capacity = 32ULL * kGiB; ///< Whole-DIMM capacity.
    std::uint32_t ranks = 4;
    std::uint32_t bankGroups = 2;        ///< Per rank.
    std::uint32_t banksPerGroup = 4;
    Bytes rowBytes = 8 * kKiB;           ///< Row-buffer page per bank.
    Bytes burstBytes = 64;               ///< One BL8 burst (8 B x 8).

    /**
     * How many ranks the NDP center buffer can stream from
     * concurrently.  4 models the buffer-chip tap of the Hermes paper;
     * 1 models a conventional host-side channel where ranks share the
     * DIMM bus.
     */
    std::uint32_t rankParallelism = 4;

    bool operator==(const DimmConfig &) const = default;

    std::uint32_t banksPerRank() const { return bankGroups * banksPerGroup; }

    /** Rows per bank implied by the capacity and geometry. */
    std::uint64_t
    rowsPerBank() const
    {
        const std::uint64_t banks =
            static_cast<std::uint64_t>(ranks) * banksPerRank();
        hermes_assert(banks > 0 && rowBytes > 0);
        return capacity / (banks * rowBytes);
    }

    /** Theoretical peak bandwidth of one rank's data bus. */
    BytesPerSecond
    rankPeakBandwidth() const
    {
        // One burst of burstBytes occupies tBL command clocks.
        return static_cast<double>(burstBytes) /
               (static_cast<double>(timing.tBL) * timing.clockPeriod());
    }

    /** Peak internal bandwidth visible to the NDP core. */
    BytesPerSecond
    internalPeakBandwidth() const
    {
        return rankPeakBandwidth() * rankParallelism;
    }

    /** Bursts needed to move the given number of bytes. */
    std::uint64_t
    burstsFor(Bytes bytes) const
    {
        return (bytes + burstBytes - 1) / burstBytes;
    }
};

} // namespace hermes::dram

#endif // HERMES_DRAM_CONFIG_HH
