#include "gpu/gpu_spec.hh"

namespace hermes::gpu {

GpuSpec
rtx4090()
{
    GpuSpec spec;
    spec.name = "RTX4090";
    spec.tensorFp16 = tflops(330.0);
    spec.memBandwidth = gbps(936.0);
    spec.memCapacity = 24ULL * kGiB;
    return spec;
}

GpuSpec
rtx3090()
{
    GpuSpec spec;
    spec.name = "RTX3090";
    spec.tensorFp16 = tflops(142.0);
    spec.memBandwidth = gbps(936.0);
    spec.memCapacity = 24ULL * kGiB;
    return spec;
}

GpuSpec
teslaT4()
{
    GpuSpec spec;
    spec.name = "TeslaT4";
    spec.tensorFp16 = tflops(65.0);
    spec.memBandwidth = gbps(320.0);
    spec.memCapacity = 16ULL * kGiB;
    return spec;
}

GpuSpec
a100_40gb()
{
    GpuSpec spec;
    spec.name = "A100-40GB";
    spec.tensorFp16 = tflops(312.0);
    spec.memBandwidth = gbps(1555.0);
    spec.memCapacity = 40ULL * kGiB;
    return spec;
}

} // namespace hermes::gpu
