#include "gpu/kernels.hh"

#include <algorithm>
#include <cstdint>

#include "common/logging.hh"

namespace hermes::gpu {

Seconds
GpuModel::roofline(Flops flops, Bytes bytes) const
{
    if (flops <= 0.0 && bytes == 0)
        return 0.0;
    const Seconds compute = flops / spec_.effectiveCompute();
    const Seconds memory =
        static_cast<double>(bytes) / spec_.effectiveBandwidth();
    return std::max(compute, memory) + spec_.kernelLaunchOverhead;
}

Seconds
GpuModel::gemm(std::uint64_t m, std::uint64_t n, std::uint64_t k) const
{
    if (m == 0 || n == 0 || k == 0)
        return 0.0;
    const Flops flops = 2.0 * static_cast<double>(m) *
                        static_cast<double>(n) * static_cast<double>(k);
    const Bytes bytes = (m * k + k * n + m * n) * kFp16Bytes;
    return roofline(flops, bytes);
}

Seconds
GpuModel::sparseGemv(std::uint64_t rows, std::uint64_t cols,
                     std::uint32_t batch) const
{
    if (rows == 0 || cols == 0 || batch == 0)
        return 0.0;
    const Flops flops = 2.0 * static_cast<double>(rows) *
                        static_cast<double>(cols) * batch;
    const Bytes weight_bytes = rows * cols * kFp16Bytes;
    const Bytes io_bytes = (cols + rows) * batch * kFp16Bytes;
    return roofline(flops, weight_bytes + io_bytes);
}

Seconds
GpuModel::attention(std::uint32_t batch, std::uint32_t heads,
                    std::uint32_t kv_heads, std::uint32_t head_dim,
                    std::uint64_t seq_len) const
{
    if (batch == 0 || heads == 0 || seq_len == 0)
        return 0.0;
    hermes_assert(kv_heads > 0 && kv_heads <= heads);
    // QK^T and PV: 2 GEMVs of length seq_len per head per sequence.
    const Flops flops = 2.0 * 2.0 * static_cast<double>(batch) * heads *
                        static_cast<double>(seq_len) * head_dim;
    // KV cache read dominates traffic (GQA shrinks it).
    const Bytes kv_bytes = 2ULL * batch * kv_heads * seq_len * head_dim *
                           kFp16Bytes;
    return roofline(flops, kv_bytes);
}

} // namespace hermes::gpu
