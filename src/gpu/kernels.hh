/**
 * @file
 * Roofline latency model for the GPU kernels Hermes launches.
 *
 * A kernel's latency is max(compute time, memory time) plus the launch
 * overhead.  During token generation the relevant kernels are
 * weight-streaming (GEMV-like) and therefore bandwidth-bound for small
 * batches; the roofline reproduces the compute/bandwidth crossover as
 * the batch grows, which is what the paper's batch-scaling figures
 * depend on.
 */

#ifndef HERMES_GPU_KERNELS_HH
#define HERMES_GPU_KERNELS_HH

#include <cstdint>
#include <utility>

#include "common/units.hh"
#include "gpu/gpu_spec.hh"

namespace hermes::gpu {

/** Analytic latency model for one GPU. */
class GpuModel
{
  public:
    explicit GpuModel(GpuSpec spec) : spec_(std::move(spec)) {}

    const GpuSpec &spec() const { return spec_; }

    /**
     * Dense GEMM C[m,n] += A[m,k] * B[k,n] in FP16.
     * Weights (B) and activations are read from GPU memory.
     */
    Seconds gemm(std::uint64_t m, std::uint64_t n, std::uint64_t k) const;

    /**
     * Row-sparse matrix-vector product against `rows` active weight
     * rows of `cols` values each, batched over `batch` tokens.  The
     * weight bytes dominate traffic; activations/outputs are small.
     */
    Seconds sparseGemv(std::uint64_t rows, std::uint64_t cols,
                       std::uint32_t batch) const;

    /**
     * Self-attention over the KV cache (token generation step).
     *
     * @param batch    Sequences in the batch.
     * @param heads    Query heads.
     * @param kv_heads KV heads (GQA when < heads).
     * @param head_dim Per-head dimension.
     * @param seq_len  Current context length.
     */
    Seconds attention(std::uint32_t batch, std::uint32_t heads,
                      std::uint32_t kv_heads, std::uint32_t head_dim,
                      std::uint64_t seq_len) const;

    /** Generic roofline: max of compute and memory time, plus launch. */
    Seconds roofline(Flops flops, Bytes bytes) const;

  private:
    GpuSpec spec_;
};

} // namespace hermes::gpu

#endif // HERMES_GPU_KERNELS_HH
