/**
 * @file
 * Specifications of the GPUs evaluated in the paper.
 *
 * The paper measures real kernels with Nsight Compute; this repo
 * substitutes an analytic roofline model (see DESIGN.md), so a GPU is
 * fully described by its peak tensor FP16 throughput, memory bandwidth,
 * memory capacity, and two efficiency factors that capture how close
 * real GEMM/GEMV kernels get to the roofline.
 */

#ifndef HERMES_GPU_GPU_SPEC_HH
#define HERMES_GPU_GPU_SPEC_HH

#include <string>

#include "common/units.hh"

namespace hermes::gpu {

/** Static description of one GPU. */
struct GpuSpec
{
    std::string name;

    /** Peak dense tensor-core FP16 throughput. */
    FlopsPerSecond tensorFp16 = 0.0;

    /** Peak DRAM bandwidth. */
    BytesPerSecond memBandwidth = 0.0;

    /** Graphics memory capacity. */
    Bytes memCapacity = 0;

    /**
     * Fraction of peak compute a tuned GEMM reaches (cuBLAS-class
     * kernels land at 60-75 % of tensor peak for LLM shapes).
     */
    double computeEfficiency = 0.70;

    /**
     * Fraction of peak bandwidth a streaming GEMV reaches (~80-85 %
     * for large rows).
     */
    double bandwidthEfficiency = 0.82;

    /** Fixed cost of launching one kernel from the host. */
    Seconds kernelLaunchOverhead = 5.0e-6;

    bool operator==(const GpuSpec &) const = default;

    FlopsPerSecond
    effectiveCompute() const
    {
        return tensorFp16 * computeEfficiency;
    }

    BytesPerSecond
    effectiveBandwidth() const
    {
        return memBandwidth * bandwidthEfficiency;
    }
};

/** NVIDIA RTX 4090: 330 tensor TFLOPS FP16, 936 GB/s, 24 GB (Sec. V-A). */
GpuSpec rtx4090();

/** NVIDIA RTX 3090: 142 tensor TFLOPS FP16, 936 GB/s, 24 GB (Sec. V-E2). */
GpuSpec rtx3090();

/** NVIDIA Tesla T4: 65 tensor TFLOPS FP16, 320 GB/s, 16 GB (Sec. V-E2). */
GpuSpec teslaT4();

/** NVIDIA A100-40GB-SXM4: 312 tensor TFLOPS FP16, 1555 GB/s, 40 GB. */
GpuSpec a100_40gb();

} // namespace hermes::gpu

#endif // HERMES_GPU_GPU_SPEC_HH
