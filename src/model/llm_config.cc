#include "model/llm_config.hh"

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace hermes::model {

Flops
LlmConfig::denseFlopsPerToken(std::uint64_t seq_len) const
{
    // QKV + projection + MLP GEMVs, plus attention over the cache.
    const double h = hidden;
    const double qkv = 2.0 * h * (h + 2.0 * kvDim());
    const double proj = 2.0 * h * h;
    const double mlp = 2.0 * mlpMatrices * h * ffnHidden;
    const double attn =
        2.0 * 2.0 * heads * static_cast<double>(seq_len) * headDim();
    return layers * (qkv + proj + mlp + attn) + 2.0 * h * vocab;
}

LlmConfig
opt13b()
{
    LlmConfig c;
    c.name = "OPT-13B";
    c.layers = 40;
    c.hidden = 5120;
    c.ffnHidden = 20480;
    c.heads = 40;
    c.kvHeads = 40;
    c.vocab = 50272;
    c.mlpMatrices = 2;
    c.activation = Activation::NativeRelu;
    return c;
}

LlmConfig
opt30b()
{
    LlmConfig c;
    c.name = "OPT-30B";
    c.layers = 48;
    c.hidden = 7168;
    c.ffnHidden = 28672;
    c.heads = 56;
    c.kvHeads = 56;
    c.vocab = 50272;
    c.mlpMatrices = 2;
    c.activation = Activation::NativeRelu;
    return c;
}

LlmConfig
opt66b()
{
    LlmConfig c;
    c.name = "OPT-66B";
    c.layers = 64;
    c.hidden = 9216;
    c.ffnHidden = 36864;
    c.heads = 72;
    c.kvHeads = 72;
    c.vocab = 50272;
    c.mlpMatrices = 2;
    c.activation = Activation::NativeRelu;
    return c;
}

LlmConfig
llama2_13b()
{
    LlmConfig c;
    c.name = "LLaMA2-13B";
    c.layers = 40;
    c.hidden = 5120;
    c.ffnHidden = 13824;
    c.heads = 40;
    c.kvHeads = 40;
    c.vocab = 32000;
    c.mlpMatrices = 3;
    c.activation = Activation::RelufiedSilu;
    return c;
}

LlmConfig
llama2_70b()
{
    LlmConfig c;
    c.name = "LLaMA2-70B";
    c.layers = 80;
    c.hidden = 8192;
    c.ffnHidden = 28672;
    c.heads = 64;
    c.kvHeads = 8;
    c.vocab = 32000;
    c.mlpMatrices = 3;
    c.activation = Activation::RelufiedSilu;
    return c;
}

LlmConfig
falcon40b()
{
    LlmConfig c;
    c.name = "Falcon-40B";
    c.layers = 60;
    c.hidden = 8192;
    c.ffnHidden = 32768;
    c.heads = 128;
    c.kvHeads = 8;
    c.vocab = 65024;
    c.mlpMatrices = 2;
    c.activation = Activation::RelufiedGelu;
    return c;
}

std::vector<LlmConfig>
allModels()
{
    return {opt13b(), opt30b(), opt66b(), llama2_13b(), llama2_70b(),
            falcon40b()};
}

LlmConfig
modelByName(const std::string &name)
{
    for (const auto &config : allModels()) {
        if (config.name == name)
            return config;
    }
    hermes_fatal("unknown model '", name, "'");
}

} // namespace hermes::model
