/**
 * @file
 * Architecture descriptions of the LLMs evaluated in the paper.
 *
 * The neuron abstraction follows Sec. II-B / Fig. 3:
 *  - an MLP neuron i bundles FC1 row i with FC2 column i (plus the
 *    gate row for gated LLaMA-style MLPs), so `ffnHidden` neurons per
 *    layer, each `mlpMatrices * hidden` FP16 values;
 *  - a self-attention neuron i bundles column i of the fused W_QKV
 *    (the input dimension that the pre-QKV ReLU can zero), so `hidden`
 *    neurons per layer, each `hidden + 2*kvDim` output values;
 *  - the attention output projection cannot exploit activation
 *    sparsity and always runs dense on the GPU (Sec. IV-A2).
 */

#ifndef HERMES_MODEL_LLM_CONFIG_HH
#define HERMES_MODEL_LLM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace hermes::model {

/** Activation function family, after the ReLU-fication of Sec. II-B. */
enum class Activation
{
    NativeRelu,   ///< OPT: ReLU out of the box.
    RelufiedSilu, ///< LLaMA-2: SiLU replaced by ReLU (SparseLLM).
    RelufiedGelu, ///< Falcon: GELU replaced by ReLU (SparseLLM).
};

/** Static architecture of one transformer LLM. */
struct LlmConfig
{
    std::string name;
    std::uint32_t layers = 0;
    std::uint32_t hidden = 0;     ///< Model dimension H.
    std::uint32_t ffnHidden = 0;  ///< MLP intermediate dimension F.
    std::uint32_t heads = 0;
    std::uint32_t kvHeads = 0;    ///< < heads means GQA.
    std::uint32_t vocab = 0;
    std::uint32_t mlpMatrices = 2; ///< 2: up+down; 3: gate+up+down.
    Activation activation = Activation::NativeRelu;

    bool operator==(const LlmConfig &) const = default;

    std::uint32_t headDim() const { return hidden / heads; }
    std::uint32_t kvDim() const { return kvHeads * headDim(); }

    /** Sparsity-eligible neurons in one layer's attention block. */
    std::uint64_t attnNeuronsPerLayer() const { return hidden; }

    /** Sparsity-eligible neurons in one layer's MLP block. */
    std::uint64_t mlpNeuronsPerLayer() const { return ffnHidden; }

    /** Weight bytes bundled into one attention neuron. */
    Bytes
    attnNeuronBytes() const
    {
        return static_cast<Bytes>(hidden + 2ULL * kvDim()) * kFp16Bytes;
    }

    /** Weight bytes bundled into one MLP neuron. */
    Bytes
    mlpNeuronBytes() const
    {
        return static_cast<Bytes>(mlpMatrices) * hidden * kFp16Bytes;
    }

    /** Dense (non-sparsifiable) projection bytes per layer. */
    Bytes
    projectionBytesPerLayer() const
    {
        return static_cast<Bytes>(hidden) * hidden * kFp16Bytes;
    }

    /** All sparsity-eligible weight bytes in one layer. */
    Bytes
    sparseBytesPerLayer() const
    {
        return attnNeuronsPerLayer() * attnNeuronBytes() +
               mlpNeuronsPerLayer() * mlpNeuronBytes();
    }

    /** Total weight bytes of one transformer layer. */
    Bytes
    layerBytes() const
    {
        return sparseBytesPerLayer() + projectionBytesPerLayer();
    }

    /** Embedding + LM-head bytes (untied). */
    Bytes
    embeddingBytes() const
    {
        return 2ULL * vocab * hidden * kFp16Bytes;
    }

    /** Total model weight bytes. */
    Bytes
    totalBytes() const
    {
        return static_cast<Bytes>(layers) * layerBytes() +
               embeddingBytes();
    }

    /** KV-cache bytes for one token across all layers. */
    Bytes
    kvBytesPerToken() const
    {
        return 2ULL * layers * kvDim() * kFp16Bytes;
    }

    /** FLOPs of one dense token-generation step (per token). */
    Flops denseFlopsPerToken(std::uint64_t seq_len) const;
};

/** The six models of Sec. V-A3 plus LLaMA-13B used by Fig. 4/13. */
LlmConfig opt13b();
LlmConfig opt30b();
LlmConfig opt66b();
LlmConfig llama2_13b();
LlmConfig llama2_70b();
LlmConfig falcon40b();

/** All models, for parameterized tests and benches. */
std::vector<LlmConfig> allModels();

/** Look a model up by name (fatal on unknown name). */
LlmConfig modelByName(const std::string &name);

} // namespace hermes::model

#endif // HERMES_MODEL_LLM_CONFIG_HH
